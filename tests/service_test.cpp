/// End-to-end tests for the solver service (src/service/): cold-miss /
/// warm-hit responses byte-identical, single-flight coalescing observed
/// through the counters, admission-control shedding with explicit
/// reasons, graceful drain with in-flight work completing, the wire
/// session pump (solve / stats / ping / quit / malformed frames on one
/// stream), and the AF_UNIX socket front-end. Runs under TSan as part of
/// the concurrency gate (the `Service` name filter in CI).

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "service/protocol.hpp"
#include "service/serve.hpp"
#include "service/service.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "trace/trace_io.hpp"

namespace dts {
namespace {

ServiceRequest basic_request(const Instance& inst, std::string id = "r") {
  ServiceRequest request;
  request.id = std::move(id);
  request.instance = inst;
  request.capacity = 1.5 * inst.min_capacity();
  return request;
}

void expect_identical_payload(const ServiceResponse& a,
                              const ServiceResponse& b) {
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.makespan, b.makespan);  // bitwise: no tolerance
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.order, b.order);
  ASSERT_EQ(a.schedule.size(), b.schedule.size());
  for (std::size_t i = 0; i < a.schedule.size(); ++i) {
    EXPECT_EQ(a.schedule[i].comm_start, b.schedule[i].comm_start);
    EXPECT_EQ(a.schedule[i].comp_start, b.schedule[i].comp_start);
  }
}

TEST(Service, ColdMissThenWarmHitAreByteIdentical) {
  ServiceOptions options;
  options.workers = 2;
  SolverService service(options);

  Rng rng(81);
  const Instance inst = testing::random_instance(rng, 12);
  const ServiceRequest request = basic_request(inst);

  const ServiceResponse cold = service.handle(request);
  ASSERT_EQ(cold.status, WireResponse::Status::kOk) << cold.error;
  EXPECT_EQ(cold.cache, WireResponse::CacheOutcome::kMiss);
  EXPECT_FALSE(cold.winner.empty());
  EXPECT_EQ(cold.order.size(), inst.size());
  EXPECT_EQ(cold.schedule.size(), inst.size());

  const ServiceResponse warm = service.handle(request);
  ASSERT_EQ(warm.status, WireResponse::Status::kOk) << warm.error;
  EXPECT_EQ(warm.cache, WireResponse::CacheOutcome::kHit);
  expect_identical_payload(cold, warm);

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.received, 2u);
  EXPECT_EQ(c.ok, 2u);
  EXPECT_EQ(c.ok_miss, 1u);
  EXPECT_EQ(c.ok_hit, 1u);
  EXPECT_EQ(c.cache.hits, 1u);
  EXPECT_EQ(c.cache.misses, 1u);
  EXPECT_EQ(c.cache.inserts, 1u);
  EXPECT_EQ(c.cache_size, 1u);
}

TEST(Service, NoCacheBypassesCacheEntirely) {
  ServiceOptions options;
  options.workers = 1;
  SolverService service(options);

  Rng rng(82);
  ServiceRequest request = basic_request(testing::random_instance(rng, 10));
  request.no_cache = true;

  const ServiceResponse first = service.handle(request);
  const ServiceResponse second = service.handle(request);
  ASSERT_EQ(first.status, WireResponse::Status::kOk) << first.error;
  ASSERT_EQ(second.status, WireResponse::Status::kOk) << second.error;
  EXPECT_EQ(first.cache, WireResponse::CacheOutcome::kBypass);
  EXPECT_EQ(second.cache, WireResponse::CacheOutcome::kBypass);
  expect_identical_payload(first, second);  // same seed, same solve

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.ok_bypass, 2u);
  EXPECT_EQ(c.cache.hits + c.cache.misses + c.cache.coalesced, 0u);
  EXPECT_EQ(c.cache_size, 0u);
}

TEST(Service, BadRequestsYieldErrorResponsesNotThrows) {
  ServiceOptions options;
  options.workers = 1;
  SolverService service(options);

  Rng rng(83);
  const Instance inst = testing::random_instance(rng, 6);

  ServiceRequest no_capacity;
  no_capacity.instance = inst;
  EXPECT_EQ(service.handle(no_capacity).status, WireResponse::Status::kError);

  ServiceRequest both = basic_request(inst);
  both.capacity_factor = 1.5;
  EXPECT_EQ(service.handle(both).status, WireResponse::Status::kError);

  ServiceRequest bad_machine = basic_request(inst);
  bad_machine.machine = "no-such-machine";
  EXPECT_EQ(service.handle(bad_machine).status, WireResponse::Status::kError);

  ServiceRequest bad_solver = basic_request(inst);
  bad_solver.solver = "no-such-solver";
  EXPECT_EQ(service.handle(bad_solver).status, WireResponse::Status::kError);

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.received, 4u);
  EXPECT_EQ(c.errors, 4u);
  EXPECT_EQ(c.ok + c.shed + c.draining, 0u);
}

TEST(Service, SingleFlightCoalescesDuplicateInFlightRequests) {
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> solve_starts{0};

  ServiceOptions options;
  options.workers = 2;
  options.on_solve_start = [&] {
    solve_starts.fetch_add(1);
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  };
  SolverService service(options);

  Rng rng(84);
  const Instance inst = testing::random_instance(rng, 10);
  constexpr std::size_t kFollowers = 4;

  std::vector<ServiceResponse> responses(1 + kFollowers);
  std::vector<std::thread> clients;
  clients.emplace_back(
      [&] { responses[0] = service.handle(basic_request(inst, "lead")); });
  // The leader registered its flight before the hook parked it; followers
  // arriving now must coalesce, not queue duplicate solves.
  while (solve_starts.load() == 0) std::this_thread::yield();
  for (std::size_t i = 0; i < kFollowers; ++i) {
    clients.emplace_back([&, i] {
      responses[1 + i] =
          service.handle(basic_request(inst, "f" + std::to_string(i)));
    });
  }
  while (service.counters().cache.coalesced < kFollowers) {
    std::this_thread::yield();
  }
  {
    const std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(solve_starts.load(), 1);  // exactly one solve ran
  ASSERT_EQ(responses[0].status, WireResponse::Status::kOk)
      << responses[0].error;
  EXPECT_EQ(responses[0].cache, WireResponse::CacheOutcome::kMiss);
  for (std::size_t i = 1; i < responses.size(); ++i) {
    ASSERT_EQ(responses[i].status, WireResponse::Status::kOk)
        << responses[i].error;
    EXPECT_EQ(responses[i].cache, WireResponse::CacheOutcome::kCoalesced);
    expect_identical_payload(responses[0], responses[i]);
  }

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.ok, 1u + kFollowers);
  EXPECT_EQ(c.ok_miss, 1u);
  EXPECT_EQ(c.ok_coalesced, kFollowers);
  EXPECT_EQ(c.cache.misses, 1u);
  EXPECT_EQ(c.cache.coalesced, kFollowers);
  EXPECT_EQ(c.cache.inserts, 1u);
  EXPECT_EQ(c.cache.hits + c.cache.misses + c.cache.coalesced, c.ok);
}

TEST(Service, ShedsWithAdmissionReasonWhenPipelineFull) {
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> solve_starts{0};

  ServiceOptions options;
  options.workers = 1;
  options.max_inflight = 1;
  options.on_solve_start = [&] {
    solve_starts.fetch_add(1);
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  };
  SolverService service(options);

  Rng rng(85);
  const Instance occupant = testing::random_instance(rng, 10);
  const Instance other = testing::random_instance(rng, 10);

  std::thread leader(
      [&, r = basic_request(occupant, "lead")] { (void)service.handle(r); });
  while (solve_starts.load() == 0) std::this_thread::yield();

  // The pipeline slot is taken: the next request is shed at admission,
  // before it touches cache or pool.
  const ServiceResponse shed = service.handle(basic_request(other, "late"));
  EXPECT_EQ(shed.status, WireResponse::Status::kShed);
  EXPECT_EQ(shed.shed_reason, "admission");

  {
    const std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  leader.join();

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.received, 2u);
  EXPECT_EQ(c.ok, 1u);
  EXPECT_EQ(c.shed, 1u);
}

TEST(Service, ShedsWithQueueFullReasonWhenPoolSaturated) {
  // Three distinct slow solves released simultaneously into a pool with
  // one worker and a one-slot queue: one runs, one queues, the rest must
  // be shed with reason "queue-full" (never an exception or a hang).
  constexpr std::size_t kClients = 3;
  std::mutex m;
  std::condition_variable cv;
  std::size_t arrived = 0;
  bool go = false;

  ServiceOptions options;
  options.workers = 1;
  options.queue_capacity = 1;
  options.on_solve_start = [&] {
    std::unique_lock<std::mutex> lock(m);
    ++arrived;
    cv.notify_all();
    cv.wait(lock, [&] { return go; });
  };
  SolverService service(options);

  Rng rng(86);
  std::vector<ServiceRequest> requests;
  for (std::size_t i = 0; i < kClients; ++i) {
    ServiceRequest request =
        basic_request(testing::random_instance(rng, 60), std::to_string(i));
    request.solver = "local-search";  // slow enough to hold the worker
    requests.push_back(std::move(request));
  }

  std::vector<ServiceResponse> responses(kClients);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] { responses[i] = service.handle(requests[i]); });
  }
  {
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return arrived == kClients; });
    go = true;
  }
  cv.notify_all();
  for (std::thread& t : clients) t.join();

  std::size_t ok = 0;
  std::size_t shed = 0;
  for (const ServiceResponse& r : responses) {
    if (r.status == WireResponse::Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(r.status, WireResponse::Status::kShed) << r.error;
      EXPECT_EQ(r.shed_reason, "queue-full");
      ++shed;
    }
  }
  EXPECT_EQ(ok + shed, kClients);
  EXPECT_GE(shed, 1u);  // the queue cannot hold everyone
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.ok, ok);
  EXPECT_EQ(c.shed, shed);
}

TEST(Service, DrainCompletesInFlightWorkAndRefusesNewRequests) {
  std::mutex m;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> solve_starts{0};

  ServiceOptions options;
  options.workers = 1;
  options.on_solve_start = [&] {
    solve_starts.fetch_add(1);
    std::unique_lock<std::mutex> lock(m);
    cv.wait(lock, [&] { return release; });
  };
  SolverService service(options);

  Rng rng(87);
  const Instance inflight = testing::random_instance(rng, 10);
  const Instance late = testing::random_instance(rng, 10);

  ServiceResponse leader_response;
  std::thread leader([&, r = basic_request(inflight, "inflight")] {
    leader_response = service.handle(r);
  });
  while (solve_starts.load() == 0) std::this_thread::yield();

  std::thread drainer([&] { service.drain(); });
  while (!service.draining()) std::this_thread::yield();

  // New work is refused while the drain waits on the in-flight solve.
  const ServiceResponse refused = service.handle(basic_request(late, "late"));
  EXPECT_EQ(refused.status, WireResponse::Status::kDraining);

  {
    const std::lock_guard<std::mutex> lock(m);
    release = true;
  }
  cv.notify_all();
  leader.join();
  drainer.join();

  // The in-flight request completed normally through the drain.
  ASSERT_EQ(leader_response.status, WireResponse::Status::kOk)
      << leader_response.error;
  EXPECT_EQ(leader_response.cache, WireResponse::CacheOutcome::kMiss);
  EXPECT_EQ(leader_response.schedule.size(), inflight.size());

  // And the drained service keeps refusing deterministically.
  EXPECT_EQ(service.handle(basic_request(late, "post")).status,
            WireResponse::Status::kDraining);
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.ok, 1u);
  EXPECT_EQ(c.draining, 2u);
}

/// Reads the next response off a reply stream, failing the test (with an
/// empty response) on unexpected EOF.
WireResponse next_response(std::istream& in) {
  std::optional<WireResponse> response = read_response(in);
  EXPECT_TRUE(response.has_value()) << "reply stream ended early";
  return response ? *std::move(response) : WireResponse{};
}

std::string solve_frame(const std::string& id, const std::string& trace_text) {
  std::ostringstream frame;
  frame << "dts1 solve " << id << "\n"
        << "capacity-factor 1.5\n"
        << "trace " << trace_text.size() << "\n"
        << trace_text << "end\n";
  return frame.str();
}

TEST(Service, WireSessionServesColdWarmStatsErrorsAndQuit) {
  ServiceOptions options;
  options.workers = 2;
  SolverService service(options);

  Rng rng(88);
  const Instance inst = testing::random_instance(rng, 10);
  std::ostringstream trace;
  write_trace(trace, inst);

  std::ostringstream session;
  session << solve_frame("a", trace.str()) << solve_frame("a", trace.str())
          << "dts1 stats s\nend\n"
          << "this is not a frame\nend\n"
          << "dts1 ping p\nend\n"
          << "dts1 quit q\nend\n";

  std::istringstream in(session.str());
  std::ostringstream out;
  const ServeStats stats = serve_stream(service, in, out);
  EXPECT_EQ(stats.frames, 5u);
  EXPECT_EQ(stats.protocol_errors, 1u);
  EXPECT_TRUE(stats.saw_quit);

  std::istringstream replies(out.str());
  const WireResponse cold = next_response(replies);
  ASSERT_EQ(cold.status, WireResponse::Status::kOk) << cold.error;
  EXPECT_EQ(cold.id, "a");
  EXPECT_EQ(cold.cache, WireResponse::CacheOutcome::kMiss);
  EXPECT_EQ(cold.order.size(), inst.size());
  EXPECT_EQ(cold.schedule.size(), inst.size());

  const WireResponse warm = next_response(replies);
  ASSERT_EQ(warm.status, WireResponse::Status::kOk) << warm.error;
  EXPECT_EQ(warm.cache, WireResponse::CacheOutcome::kHit);
  // Byte-identical on the wire: every payload field round-trips through
  // the same %.17g formatting, so field equality here is byte equality.
  EXPECT_EQ(warm.winner, cold.winner);
  EXPECT_EQ(warm.makespan, cold.makespan);
  EXPECT_EQ(warm.evaluations, cold.evaluations);
  EXPECT_EQ(warm.order, cold.order);
  EXPECT_EQ(warm.schedule, cold.schedule);

  const WireResponse counters = next_response(replies);
  ASSERT_EQ(counters.status, WireResponse::Status::kOk);
  ASSERT_FALSE(counters.extra.empty());
  EXPECT_EQ(counters.extra.front(), "requests 2");

  const WireResponse error = next_response(replies);
  EXPECT_EQ(error.status, WireResponse::Status::kError);
  EXPECT_EQ(error.id, "-");
  EXPECT_FALSE(error.error.empty());

  EXPECT_EQ(next_response(replies).status, WireResponse::Status::kOk);  // ping
  EXPECT_EQ(next_response(replies).status, WireResponse::Status::kOk);  // quit
}

TEST(Service, SocketServerServesConcurrentClients) {
  ServiceOptions options;
  options.workers = 2;
  SolverService service(options);

  const std::string path = ::testing::TempDir() + "dts_service_test.sock";
  std::unique_ptr<SocketServer> server;
  try {
    server = std::make_unique<SocketServer>(service, path);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "cannot bind a local socket here: " << e.what();
  }
  server->start();

  Rng rng(89);
  const Instance inst = testing::random_instance(rng, 10);
  std::ostringstream trace;
  write_trace(trace, inst);
  const std::string session =
      solve_frame("sock", trace.str()) + "dts1 quit bye\nend\n";

  auto run_client = [&]() -> std::string {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return {};
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) < 0) {
      ::close(fd);
      return {};
    }
    std::size_t sent = 0;
    while (sent < session.size()) {
      const ssize_t n =
          ::write(fd, session.data() + sent, session.size() - sent);
      if (n <= 0) break;
      sent += static_cast<std::size_t>(n);
    }
    std::string reply;
    char buf[4096];
    for (;;) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n <= 0) break;  // server closes after quit
      reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
  };

  constexpr std::size_t kClients = 3;
  std::vector<std::string> replies(kClients);
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] { replies[i] = run_client(); });
  }
  for (std::thread& t : clients) t.join();
  server->stop();

  for (const std::string& reply : replies) {
    if (reply.empty()) GTEST_SKIP() << "socket client could not connect";
    std::istringstream in(reply);
    const WireResponse solve = next_response(in);
    ASSERT_EQ(solve.status, WireResponse::Status::kOk) << solve.error;
    EXPECT_EQ(solve.id, "sock");
    EXPECT_EQ(solve.order.size(), inst.size());
    const WireResponse quit = next_response(in);
    EXPECT_EQ(quit.status, WireResponse::Status::kOk);
    EXPECT_EQ(quit.id, "bye");
  }
  // Identical traffic from every client: one miss, the rest hits or
  // coalesced — never duplicate inserts.
  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.ok, kClients);  // ping/quit frames do not count as requests
  EXPECT_EQ(c.cache.inserts, 1u);
  EXPECT_EQ(c.cache.hits + c.cache.misses + c.cache.coalesced, kClients);
}

TEST(Service, LeaderFailureReleasesFollowersAndRetiresFlight) {
  std::atomic<bool> armed{true};
  std::atomic<bool> leader_started{false};
  SolverService* service_ptr = nullptr;

  ServiceOptions options;
  options.workers = 1;
  options.on_solve_start = [&] {
    if (!armed.exchange(false)) return;
    leader_started.store(true);
    // Hold the doomed leader until a follower has parked on its flight,
    // then unwind before the solve is ever submitted.
    while (service_ptr->counters().cache.coalesced == 0) {
      std::this_thread::yield();
    }
    throw std::runtime_error("solve hook exploded");
  };
  SolverService service(options);
  service_ptr = &service;

  Rng rng(90);
  const Instance inst = testing::random_instance(rng, 10);

  ServiceResponse leader_response;
  std::thread leader(
      [&] { leader_response = service.handle(basic_request(inst, "lead")); });
  while (!leader_started.load()) std::this_thread::yield();
  ServiceResponse follower_response;
  std::thread follower([&] {
    follower_response = service.handle(basic_request(inst, "follow"));
  });
  leader.join();
  follower.join();

  // Leader and parked follower both surface the failure as an error
  // response — nobody hangs on the dead flight.
  ASSERT_EQ(leader_response.status, WireResponse::Status::kError);
  EXPECT_EQ(leader_response.error, "solve hook exploded");
  ASSERT_EQ(follower_response.status, WireResponse::Status::kError);
  EXPECT_EQ(follower_response.error, "solve hook exploded");

  // And the flight was retired: an identical request elects a fresh
  // leader and solves, instead of coalescing onto the corpse forever.
  const ServiceResponse retry = service.handle(basic_request(inst, "retry"));
  ASSERT_EQ(retry.status, WireResponse::Status::kOk) << retry.error;
  EXPECT_EQ(retry.cache, WireResponse::CacheOutcome::kMiss);

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.errors, 2u);
  EXPECT_EQ(c.ok, 1u);
  EXPECT_EQ(c.cache.misses, 2u);
  EXPECT_EQ(c.cache.coalesced, 1u);
  EXPECT_EQ(c.cache.inserts, 1u);
}

/// Connects to `path`, writes `session`, reads to EOF. Empty on failure.
std::string socket_session(const std::string& path,
                           const std::string& session) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return {};
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return {};
  }
  std::size_t sent = 0;
  while (sent < session.size()) {
    const ssize_t n = ::write(fd, session.data() + sent, session.size() - sent);
    if (n <= 0) break;
    sent += static_cast<std::size_t>(n);
  }
  std::string reply;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    reply.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return reply;
}

TEST(Service, SocketServerBoundsLiveConnectionsNotLifetimeAccepts) {
  ServiceOptions options;
  options.workers = 1;
  SolverService service(options);

  const std::string path = ::testing::TempDir() + "dts_service_reap.sock";
  SocketServer::Options server_options;
  server_options.max_connections = 2;
  std::unique_ptr<SocketServer> server;
  try {
    server = std::make_unique<SocketServer>(service, path, server_options);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "cannot bind a local socket here: " << e.what();
  }
  server->start();

  // Far more sequential sessions than max_connections: finished
  // connections must be reaped, so the bound counts live connections —
  // a long-running server never starts shedding on cumulative accepts.
  for (int i = 0; i < 8; ++i) {
    const std::string reply =
        socket_session(path, "dts1 ping p\nend\ndts1 quit bye\nend\n");
    if (reply.empty()) GTEST_SKIP() << "socket client could not connect";
    std::istringstream in(reply);
    const WireResponse ping = next_response(in);
    ASSERT_EQ(ping.status, WireResponse::Status::kOk)
        << "session " << i << " was refused: " << ping.shed_reason;
    EXPECT_EQ(ping.id, "p");
  }
  server->stop();
}

TEST(Service, SocketServerStopUnblocksIdleConnections) {
  ServiceOptions options;
  options.workers = 1;
  SolverService service(options);

  const std::string path = ::testing::TempDir() + "dts_service_idle.sock";
  std::unique_ptr<SocketServer> server;
  try {
    server = std::make_unique<SocketServer>(service, path);
  } catch (const std::runtime_error& e) {
    GTEST_SKIP() << "cannot bind a local socket here: " << e.what();
  }
  server->start();

  // Park a connection: ping, read the full response, then go idle so the
  // server's pump is blocked in read() on this live client.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    GTEST_SKIP() << "socket client could not connect";
  }
  const std::string ping = "dts1 ping p\nend\n";
  ASSERT_EQ(::write(fd, ping.data(), ping.size()),
            static_cast<ssize_t>(ping.size()));
  std::string reply;
  char buf[256];
  while (reply.find("end\n") == std::string::npos) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    ASSERT_GT(n, 0) << "connection died before answering the ping";
    reply.append(buf, static_cast<std::size_t>(n));
  }

  // stop() must half-close the idle connection and return promptly
  // instead of waiting for this client to disconnect (the test would
  // time out otherwise).
  server->stop();
  EXPECT_LE(::read(fd, buf, sizeof(buf)), 0);  // server hung up
  ::close(fd);
}

}  // namespace
}  // namespace dts
