/// Precedence (task-DAG) coverage: edge-set validation with exact
/// diagnostics, trace format v4 round-trips, dependency-aware trace
/// transforms, edge-free bit-parity goldens across every builtin solver,
/// and a differential corpus of random DAGs where each solver's declared
/// SolverDeps capability drives the expectation — "any" must produce a
/// validate_schedule()-clean schedule at or above the critical-path
/// bound, "independent" must reject with a clear error.

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "milp/milp_solver.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "trace/transforms.hpp"

namespace dts {
namespace {

Task simple_task(Time comm, Time comp, Mem mem,
                 std::vector<TaskId> deps = {}) {
  Task t;
  t.comm = comm;
  t.comp = comp;
  t.mem = mem;
  t.deps = std::move(deps);
  return t;
}

/// Random instance whose edges always point backwards (dep < id), so the
/// edge set is acyclic by construction; ~30% of tasks carry 1-2 edges.
Instance random_dag_instance(Rng& rng, std::size_t n, std::size_t channels) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.comm = rng.uniform(0.0, 10.0);
    t.comp = rng.uniform(0.0, 10.0);
    if (rng.chance(0.08)) t.comm = 0.0;
    if (rng.chance(0.08)) t.comp = 0.0;
    t.mem = rng.uniform(0.1, 10.0);
    t.channel = static_cast<ChannelId>(rng.index(channels));
    if (i > 0 && rng.chance(0.3)) {
      t.deps.push_back(static_cast<TaskId>(rng.index(i)));
      const TaskId second = static_cast<TaskId>(rng.index(i));
      if (rng.chance(0.3) && second != t.deps.front()) {
        t.deps.push_back(second);
      }
    }
    tasks.push_back(std::move(t));
  }
  return Instance(std::move(tasks));
}

// ------------------------------------------------------------ validation

TEST(DagValidation, DanglingDependencyIsRejectedWithExactMessage) {
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.0, 1.0, 1.0));
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {5}));
  try {
    const Instance inst(std::move(tasks));
    FAIL() << "dangling edge accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "Instance: task 1 depends on unknown task 5 (instance has "
                 "2 tasks)");
  }
}

TEST(DagValidation, SelfEdgeIsRejectedWithExactMessage) {
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {0}));
  try {
    const Instance inst(std::move(tasks));
    FAIL() << "self-edge accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "Instance: task 0 depends on itself");
  }
}

TEST(DagValidation, CycleIsRejectedWithExactMessage) {
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {2}));
  tasks.push_back(simple_task(1.0, 1.0, 1.0));  // not on the cycle
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {3}));
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {0}));
  try {
    const Instance inst(std::move(tasks));
    FAIL() << "cyclic edge set accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(), "Instance: dependency cycle among tasks {0, 2, 3}");
  }
}

TEST(DagValidation, ValidateSchedulePinpointsDependencyViolation) {
  // Task 1 depends on task 0 (comp ends at 2.0) but transfers at 0.5.
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.0, 1.0, 1.0));
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {0}));
  const Instance inst(std::move(tasks));
  Schedule sched(2);
  sched.set(0, 0.0, 1.0);
  sched.set(1, 0.5, 2.0);
  const ValidationReport report = validate_schedule(inst, sched, 10.0);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const Violation& v : report.violations) {
    found = found || v.kind == Violation::Kind::kDependencyViolated;
  }
  EXPECT_TRUE(found) << report.summary();
}

// --------------------------------------------------------- trace format

TEST(DagTrace, V4RoundTripPreservesEdges) {
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.5, 2.0, 64.0));
  tasks.push_back(simple_task(0.5, 1.0, 32.0, {0}));
  tasks.push_back(simple_task(2.5, 0.0, 16.0, {0, 1}));
  tasks[2].channel = 1;
  const Instance inst(std::move(tasks));

  std::ostringstream out;
  write_trace(out, inst);
  EXPECT_EQ(out.str().substr(0, 14), "# dts-trace v4");
  EXPECT_NE(out.str().find(" deps=0,1\n"), std::string::npos) << out.str();

  std::istringstream in(out.str());
  const Instance back = read_trace(in);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_TRUE(back.has_dependencies());
  EXPECT_TRUE(back[0].deps.empty());
  EXPECT_EQ(back[1].deps, std::vector<TaskId>{0});
  EXPECT_EQ(back[2].deps, (std::vector<TaskId>{0, 1}));
}

TEST(DagTrace, EdgeFreeInstancesStayOnLegacyVersions) {
  // The v4 column is opt-in: without edges the writer emits the exact
  // legacy bytes, so old readers keep working on new traces.
  const Instance single = Instance::from_triples({{1.0, 2.0, 4.0}});
  std::ostringstream out;
  write_trace(out, single);
  EXPECT_EQ(out.str().substr(0, 14), "# dts-trace v1");
  EXPECT_EQ(out.str().find("deps="), std::string::npos);
}

TEST(DagTrace, DepsColumnNeedsTheV4Header) {
  std::istringstream in(
      "# dts-trace v3\n"
      "task a 1 1 1\n"
      "task b 1 1 1 deps=0\n");
  try {
    (void)read_trace(in);
    FAIL() << "v3 trace with deps= accepted";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.line(), 3u);
    EXPECT_NE(std::string(e.what()).find("dependency edges need the "
                                         "'# dts-trace v4' header"),
              std::string::npos)
        << e.what();
  }
}

TEST(DagTrace, MalformedDepsListsAreLoudErrors) {
  for (const char* bad : {"deps=", "deps=1,", "deps=,1", "deps=x",
                          "deps=1,,2", "deps=-1"}) {
    std::istringstream in(std::string("# dts-trace v4\n") +
                          "task a 1 1 1\n"
                          "task b 1 1 1 " + bad + "\n");
    EXPECT_THROW((void)read_trace(in), TraceIoError) << bad;
  }
  // Duplicate deps= and content after deps= are rejected too.
  {
    std::istringstream in(
        "# dts-trace v4\ntask a 1 1 1\ntask b 1 1 1 deps=0 deps=0\n");
    EXPECT_THROW((void)read_trace(in), TraceIoError);
  }
  {
    std::istringstream in(
        "# dts-trace v4\ntask a 1 1 1\ntask b 1 1 1 deps=0 7\n");
    EXPECT_THROW((void)read_trace(in), TraceIoError);
  }
}

TEST(DagTrace, DanglingIdsAreCaughtAtInstanceConstruction) {
  // The reader only checks the lexical shape; Instance construction owns
  // the semantic diagnostics, so the error message is its exact one.
  std::istringstream in("# dts-trace v4\ntask a 1 1 1 deps=9\n");
  try {
    (void)read_trace(in);
    FAIL() << "dangling edge accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "Instance: task 0 depends on unknown task 9 (instance has "
                 "1 tasks)");
  }
}

// ----------------------------------------------------------- transforms

TEST(DagTransforms, MergeOffsetsEdgesPerTrace) {
  std::vector<Task> a_tasks, b_tasks;
  a_tasks.push_back(simple_task(1.0, 1.0, 1.0));
  a_tasks.push_back(simple_task(1.0, 1.0, 1.0, {0}));
  b_tasks.push_back(simple_task(2.0, 2.0, 2.0));
  b_tasks.push_back(simple_task(2.0, 2.0, 2.0, {0}));
  const std::vector<Instance> traces{Instance(std::move(a_tasks)),
                                     Instance(std::move(b_tasks))};
  const Instance merged = merge_traces(traces);
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_EQ(merged[1].deps, std::vector<TaskId>{0});
  EXPECT_EQ(merged[3].deps, std::vector<TaskId>{2});  // shifted, not 0
}

TEST(DagTransforms, FilterSeversEdgesOntoDroppedTasks) {
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.0, 1.0, 1.0));
  tasks.push_back(simple_task(9.0, 1.0, 1.0, {0}));  // dropped
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {1, 0}));
  const Instance inst(std::move(tasks));
  const Instance kept =
      filter_tasks(inst, [](const Task& t) { return t.comm < 5.0; });
  ASSERT_EQ(kept.size(), 2u);
  EXPECT_TRUE(kept[0].deps.empty());
  // The edge onto dropped task 1 is severed; the edge onto kept task 0
  // survives, remapped to the new id space.
  EXPECT_EQ(kept[1].deps, std::vector<TaskId>{0});
}

TEST(DagTransforms, SplitDropsCrossBatchEdges) {
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.0, 1.0, 1.0));
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {0}));
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {1}));  // crosses the cut
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {2}));
  const Instance inst(std::move(tasks));
  const std::vector<Instance> batches = split_batches(inst, 2);
  ASSERT_EQ(batches.size(), 2u);
  EXPECT_EQ(batches[0][1].deps, std::vector<TaskId>{0});
  EXPECT_TRUE(batches[1][0].deps.empty());  // cross-batch edge dropped
  EXPECT_EQ(batches[1][1].deps, std::vector<TaskId>{0});  // remapped local
}

TEST(DagTransforms, WritebackRemapsAndOptionallyDependsOnProducer) {
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.0, 1.0, 8.0));
  tasks.push_back(simple_task(1.0, 1.0, 8.0, {0}));
  const Instance inst(std::move(tasks));
  const ChannelSpec d2h{.name = "D2H", .bandwidth = 8.0, .latency = 0.0};

  // Default: write-backs stay independent (the historical duplex traces)
  // but the original edges survive the interleaving shift.
  const Instance loose = with_writeback(inst, d2h, 0.5);
  ASSERT_EQ(loose.size(), 4u);
  EXPECT_EQ(loose[2].deps, std::vector<TaskId>{0});  // was {0}, 0 stays 0
  EXPECT_TRUE(loose[1].deps.empty());
  EXPECT_TRUE(loose[3].deps.empty());

  // depend_on_producer: each write-back waits for its producing task.
  const Instance tied = with_writeback(inst, d2h, 0.5, true);
  ASSERT_EQ(tied.size(), 4u);
  EXPECT_EQ(tied[1].deps, std::vector<TaskId>{0});  // wb of task 0
  EXPECT_EQ(tied[2].deps, std::vector<TaskId>{0});  // original edge
  EXPECT_EQ(tied[3].deps, std::vector<TaskId>{2});  // wb of (shifted) task 1
}

TEST(DagTransforms, CcsdDagGeneratorBuildsChains) {
  TraceConfig config;
  config.seed = 11;
  config.min_tasks = 40;
  config.max_tasks = 60;
  config.machine = MachineModel::duplex_pcie();
  const Instance inst = generate_ccsd_dag_trace(config);
  EXPECT_TRUE(inst.has_dependencies());
  EXPECT_GE(inst.size(), 40u);
  std::size_t writebacks = 0;
  for (const Task& t : inst) {
    if (t.comp == 0.0 && t.channel == kChannelD2H) {
      ++writebacks;
      ASSERT_EQ(t.deps.size(), 1u);  // terminal edge on the last contraction
    }
    EXPECT_TRUE(t.has_comm_bytes());
    for (const TaskId dep : t.deps) EXPECT_LT(dep, t.id);
  }
  EXPECT_GT(writebacks, 0u);
  // Deterministic in the seed.
  const Instance again = generate_ccsd_dag_trace(config);
  ASSERT_EQ(again.size(), inst.size());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(inst[i].comm, again[i].comm);
    EXPECT_EQ(inst[i].deps, again[i].deps);
  }
}

// --------------------------------------------- edge-free parity goldens

/// Every builtin heuristic's makespan on a fixed duplex CCSD trace,
/// pinned to the exact double. The DAG-aware engine paths must remain
/// bit-identical on edge-free instances — any drift here is a behavior
/// change in the paper's model, not a tuning detail.
TEST(DagEdgeFreeParity, HeuristicGoldensOnDuplexCcsdTrace) {
  TraceConfig config;
  config.seed = 42;
  config.min_tasks = 24;
  config.max_tasks = 24;
  config.machine = MachineModel::duplex_pcie();
  const Instance inst =
      generate_trace(ChemistryKernel::kCoupledClusterSD, config);
  ASSERT_FALSE(inst.has_dependencies());

  SolveRequest request;
  request.instance = inst;
  request.capacity = 1.5 * inst.min_capacity();
  SolveOptions options;
  options.max_iterations = 50;
  options.parallel_candidates = false;
  options.compute_bounds = false;

  const std::vector<std::pair<std::string, double>> goldens = {
      {"OS", 1.0575203717221642},
      {"OOSIM", 1.3287487287741986},
      {"IOCMS", 1.1360088058814108},
      {"DOCPS", 1.2004371528069455},
      {"IOCCS", 1.2020158768765918},
      {"DOCCS", 1.147635945690586},
      {"GG", 1.1303209260851632},
      {"BP", 1.0463199388220827},
      {"LCMR", 1.0614428754404432},
      {"SCMR", 1.0946219684896417},
      {"MAMR", 1.1156968516321506},
      {"OOLCMR", 1.0640878685096584},
      {"OOSCMR", 1.0886985584926101},
      {"OOMAMR", 1.1076047476532445},
      {"auto", 1.0463199388220827},
      {"auto-batch", 1.0122776577984876},
      {"local-search", 0.97683606250686583},
      {"duplex-balance", 1.1027104448374212},
      {"window", 1.0009995187728733},
  };
  std::map<std::string, double> expected(goldens.begin(), goldens.end());
  std::size_t covered = 0;
  for (const SolverListing& listing : list_solvers()) {
    if (listing.name == "exhaustive" || listing.name == "branch-bound" ||
        listing.name == "milp") {
      continue;  // exact solvers: tiny golden below
    }
    if (listing.name == "test-submission") continue;  // solver_test's own
    const auto it = expected.find(listing.name);
    ASSERT_NE(it, expected.end())
        << listing.name << " is registered but has no golden row — add one";
    ++covered;
    const SolveResult res = solve(request, listing.name, options);
    EXPECT_EQ(res.makespan, it->second) << listing.name;
  }
  // Every golden row must still name a registered solver.
  EXPECT_EQ(covered, goldens.size());
}

TEST(DagEdgeFreeParity, ExactSolverGoldensOnTinyDuplexInstance) {
  Rng rng(20260809);
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) {
    Task t;
    t.comm = rng.uniform(0.0, 10.0);
    t.comp = rng.uniform(0.0, 10.0);
    t.mem = rng.uniform(0.1, 10.0);
    t.channel = static_cast<ChannelId>(i % 2);
    tasks.push_back(std::move(t));
  }
  const Instance inst(std::move(tasks));
  SolveRequest request;
  request.instance = inst;
  request.capacity = 1.5 * inst.min_capacity();
  SolveOptions options;
  options.max_iterations = 20000;
  options.parallel_candidates = false;
  options.compute_bounds = false;
  const std::vector<std::pair<std::string, double>> goldens = {
      {"exhaustive", 41.905647569726021},
      {"branch-bound", 41.905647569726021},
      {"milp", 43.638520111556502},
      {"window:3:pair", 46.762271245538784},
  };
  for (const auto& [name, makespan] : goldens) {
    const SolveResult res = solve(request, name, options);
    EXPECT_EQ(res.makespan, makespan) << name;
  }
}

// ------------------------------------------------ differential (random)

/// Per-solver expectations on DAG instances are derived from the
/// registry's SolverDeps declaration — never a hand-kept list: "any"
/// must schedule the edges correctly, "independent" must reject.
TEST(DagDifferential, EverySolverHonorsItsDeclaredCapability) {
  struct Plan {
    std::string name;
    bool exact = false;
    std::size_t max_n = 40;
    bool single_channel_only = false;
    bool independent_only = false;
    std::size_t max_iterations = 200;
  };
  std::vector<Plan> plans;
  for (const SolverListing& listing : list_solvers()) {
    Plan plan;
    plan.name = listing.name;
    plan.single_channel_only = listing.channels == "single";
    plan.independent_only = listing.deps == "independent";
    if (listing.name == "exhaustive") {
      plan.exact = true;
      plan.max_n = 7;
    } else if (listing.name == "branch-bound") {
      plan.exact = true;
      plan.max_n = 5;
    } else if (listing.name == "milp") {
      plan.max_n = 4;  // rejection is cheap, but keep the corpus uniform
    }
    plans.push_back(std::move(plan));
  }
  // The registry must still contain declared-independent solvers (milp),
  // or the rejection path below would silently stop being exercised.
  std::size_t independent = 0;
  for (const Plan& plan : plans) independent += plan.independent_only;
  ASSERT_GE(independent, 1u);

  Rng rng(20260808);
  SolveOptions options;
  options.parallel_candidates = false;
  options.compute_bounds = false;

  for (int round = 0; round < 60; ++round) {
    const std::size_t channels = 1 + rng.index(3);
    const std::size_t n = 2 + rng.index(39);
    const Instance inst = random_dag_instance(rng, n, channels);
    if (!inst.has_dependencies()) continue;
    const Mem capacity = testing::random_capacity(rng, inst);
    const Bounds bounds = compute_bounds(inst);
    const Time cp = critical_path_bound(inst);
    EXPECT_EQ(bounds.critical_path, cp);
    const SolveRequest request{.instance = inst, .capacity = capacity};
    SCOPED_TRACE("round " + std::to_string(round) + ": n=" +
                 std::to_string(n) + " channels=" + std::to_string(channels));

    std::map<std::string, Time> makespans;
    for (const Plan& plan : plans) {
      if (n > plan.max_n) continue;
      if (plan.independent_only) {
        // The declared capability is the contract: a clean rejection,
        // never a schedule that silently ignores the edges.
        EXPECT_THROW((void)solve(request, plan.name, options),
                     std::invalid_argument)
            << plan.name;
        continue;
      }
      if (plan.single_channel_only && !inst.single_channel()) {
        EXPECT_THROW((void)solve(request, plan.name, options),
                     std::invalid_argument)
            << plan.name;
        continue;
      }
      SolveResult res;
      options.max_iterations = plan.max_iterations;
      ASSERT_NO_THROW(res = solve(request, plan.name, options)) << plan.name;
      EXPECT_TRUE(res.schedule.complete()) << plan.name;
      // validate_schedule re-simulates the edge rule: every transfer at
      // or after its predecessors' computation ends.
      EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity))
          << plan.name;
      EXPECT_TRUE(approx_leq(cp, res.makespan))
          << plan.name << ": makespan " << res.makespan
          << " beats the critical-path bound " << cp;
      EXPECT_TRUE(approx_leq(bounds.omim_lower, res.makespan)) << plan.name;
      makespans[plan.name] = res.makespan;
    }

    // Exact dominance carries over to DAGs: the searches enumerate
    // topological orders only, and every heuristic schedule is one.
    for (const Plan& exact : plans) {
      if (!exact.exact || !makespans.count(exact.name)) continue;
      for (const auto& [name, ms] : makespans) {
        EXPECT_TRUE(approx_leq(makespans[exact.name], ms))
            << exact.name << " (" << makespans[exact.name]
            << ") beaten by " << name << " (" << ms << ")";
      }
    }
  }
}

TEST(DagDifferential, SolveGateRejectsMilpWithExactMessage) {
  std::vector<Task> tasks;
  tasks.push_back(simple_task(1.0, 1.0, 1.0));
  tasks.push_back(simple_task(1.0, 1.0, 1.0, {0}));
  const Instance inst(std::move(tasks));
  const SolveRequest request{.instance = inst, .capacity = 4.0};
  try {
    (void)solve(request, "milp");
    FAIL() << "milp accepted a DAG instance";
  } catch (const std::invalid_argument& e) {
    EXPECT_STREQ(e.what(),
                 "solve: solver 'milp' schedules independent task sets only "
                 "(deps=independent), but the instance declares dependency "
                 "edges");
  }
  // The direct entry point guards itself too (its LP carries no
  // precedence rows, so its bounds would be invalid on a DAG).
  EXPECT_THROW((void)solve_order_milp(inst, 4.0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace dts
