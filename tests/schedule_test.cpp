#include "core/schedule.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "test_util.hpp"

namespace dts {
namespace {

TEST(Schedule, StartsUnscheduled) {
  Schedule s(3);
  EXPECT_FALSE(s.complete());
  EXPECT_FALSE(s[0].scheduled());
}

TEST(Schedule, SetAndComplete) {
  Schedule s(2);
  s.set(0, 0.0, 1.0);
  EXPECT_FALSE(s.complete());
  s.set(1, 1.0, 2.0);
  EXPECT_TRUE(s.complete());
}

TEST(Schedule, MakespanIsLastComputeEnd) {
  const Instance inst = testing::table3_instance();
  Schedule s(inst.size());
  s.set(0, 0, 3);    // A comp [3,5)
  s.set(1, 3, 4);    // B comp [4,7)
  s.set(2, 4, 8);    // C comp [8,12)
  s.set(3, 8, 12);   // D comp [12,13)
  EXPECT_DOUBLE_EQ(s.makespan(inst), 13.0);
}

TEST(Schedule, MakespanThrowsOnIncomplete) {
  const Instance inst = testing::table3_instance();
  Schedule s(inst.size());
  s.set(0, 0, 3);
  EXPECT_THROW((void)s.makespan(inst), std::logic_error);
}

TEST(Schedule, MakespanThrowsOnSizeMismatch) {
  const Instance inst = testing::table3_instance();
  Schedule s(2);
  s.set(0, 0, 1);
  s.set(1, 1, 2);
  EXPECT_THROW((void)s.makespan(inst), std::invalid_argument);
}

TEST(Schedule, CommAndCompOrders) {
  Schedule s(3);
  s.set(0, 5.0, 9.0);
  s.set(1, 0.0, 2.0);
  s.set(2, 2.0, 5.0);
  EXPECT_EQ(s.comm_order(), (std::vector<TaskId>{1, 2, 0}));
  EXPECT_EQ(s.comp_order(), (std::vector<TaskId>{1, 2, 0}));
  EXPECT_TRUE(s.is_permutation_schedule());
}

TEST(Schedule, DetectsOrderMismatch) {
  Schedule s(2);
  s.set(0, 0.0, 5.0);  // first on link...
  s.set(1, 1.0, 3.0);  // ...second on link but first on processor
  EXPECT_FALSE(s.is_permutation_schedule());
}

TEST(Schedule, OrderTieBreaksById) {
  Schedule s(2);
  s.set(1, 0.0, 0.0);
  s.set(0, 0.0, 0.0);  // same instants: id order wins
  EXPECT_EQ(s.comm_order(), (std::vector<TaskId>{0, 1}));
}

TEST(Schedule, ToStringListsEveryTask) {
  const Instance inst = testing::table3_instance();
  Schedule s(inst.size());
  s.set(0, 0, 3);
  s.set(1, 3, 4);
  s.set(2, 4, 8);
  s.set(3, 8, 12);
  const std::string text = to_string(s, inst);
  EXPECT_NE(text.find("T0"), std::string::npos);
  EXPECT_NE(text.find("T3"), std::string::npos);
}

}  // namespace
}  // namespace dts
