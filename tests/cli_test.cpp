#include "cli/cli.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/registry.hpp"

namespace dts::cli {
namespace {

struct CliRun {
  int exit_code;
  std::string out;
  std::string err;
};

/// Runs one command; `stdin_text` feeds trace arguments given as '-'.
CliRun run(const std::vector<std::string>& args,
           const std::string& stdin_text = {}) {
  std::vector<const char*> argv;
  argv.reserve(args.size());
  for (const auto& a : args) argv.push_back(a.c_str());
  std::ostringstream out;
  std::ostringstream err;
  std::istringstream in(stdin_text);
  const int code =
      run_cli(static_cast<int>(argv.size()), argv.data(), out, err, in);
  return CliRun{code, out.str(), err.str()};
}

/// Unique temp file path per test, cleaned up on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::filesystem::temp_directory_path() /
              ("dts_cli_test_" + name)) {
    std::filesystem::remove(path_);
  }
  ~TempFile() { std::filesystem::remove(path_); }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  std::filesystem::path path_;
};

TEST(CommandLineParse, SplitsCommandFlagsAndPositional) {
  const char* argv[] = {"schedule", "file.trace", "--heuristic=LCMR",
                        "--gantt"};
  const CommandLine cmd = parse_command_line(4, argv);
  EXPECT_EQ(cmd.command, "schedule");
  ASSERT_EQ(cmd.positional.size(), 1u);
  EXPECT_EQ(cmd.positional[0], "file.trace");
  EXPECT_EQ(cmd.flag("heuristic").value_or(""), "LCMR");
  EXPECT_EQ(cmd.flag("gantt").value_or(""), "true");
  EXPECT_FALSE(cmd.flag("absent").has_value());
  EXPECT_DOUBLE_EQ(cmd.flag_or("absent", 7.5), 7.5);
}

TEST(CommandLineParse, RejectsMalformedFlags) {
  const char* empty[] = {"--"};
  EXPECT_THROW((void)parse_command_line(1, empty), std::invalid_argument);
  const char* noname[] = {"--=3"};
  EXPECT_THROW((void)parse_command_line(1, noname), std::invalid_argument);
}

TEST(Cli, NoCommandShowsUsage) {
  const CliRun r = run({});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpExitsZero) {
  const CliRun r = run({"help"});
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.out.find("generate"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const CliRun r = run({"frobnicate"});
  EXPECT_EQ(r.exit_code, 2);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, GenerateInfoScheduleRoundTrip) {
  TempFile file("roundtrip.trace");
  const CliRun gen = run({"generate", "--kernel=HF", "--seed=5",
                          "--min-tasks=40", "--max-tasks=60",
                          "--out=" + file.str()});
  ASSERT_EQ(gen.exit_code, 0) << gen.err;
  EXPECT_NE(gen.out.find("wrote"), std::string::npos);

  const CliRun info = run({"info", file.str()});
  ASSERT_EQ(info.exit_code, 0) << info.err;
  EXPECT_NE(info.out.find("OMIM lower bound"), std::string::npos);
  EXPECT_NE(info.out.find("176KB"), std::string::npos);

  const CliRun sched = run({"schedule", file.str(), "--heuristic=OOLCMR",
                            "--capacity-factor=1.5", "--gantt"});
  ASSERT_EQ(sched.exit_code, 0) << sched.err;
  EXPECT_NE(sched.out.find("ratio to OMIM"), std::string::npos);
  EXPECT_NE(sched.out.find("comm |"), std::string::npos);
}

TEST(Cli, GenerateCcsdDagWritesV4AndSolves) {
  TempFile file("dag.trace");
  const CliRun gen = run({"generate", "--kernel=CCSD-DAG", "--seed=3",
                          "--min-tasks=12", "--max-tasks=16",
                          "--out=" + file.str()});
  ASSERT_EQ(gen.exit_code, 0) << gen.err;
  EXPECT_NE(gen.out.find("CCSD-DAG"), std::string::npos);

  std::ifstream in(file.str());
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header, "# dts-trace v4");

  const CliRun solve =
      run({"solve", file.str(), "--capacity-factor=1.5"});
  ASSERT_EQ(solve.exit_code, 0) << solve.err;
  EXPECT_NE(solve.out.find("winner:"), std::string::npos);

  const CliRun milp = run({"solve", file.str(), "--solver=milp",
                           "--capacity-factor=1.5"});
  EXPECT_NE(milp.exit_code, 0);
  EXPECT_NE(milp.err.find("independent task sets only"), std::string::npos);
}

TEST(Cli, CompareListsEveryHeuristic) {
  TempFile file("compare.trace");
  ASSERT_EQ(run({"generate", "--kernel=CCSD", "--seed=2", "--min-tasks=30",
                 "--max-tasks=40", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r = run({"compare", file.str(), "--capacity-factor=1.25"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  for (const auto& h : all_heuristics()) {
    EXPECT_NE(r.out.find(std::string(h.name)), std::string::npos) << h.name;
  }
  EXPECT_NE(r.out.find("best:"), std::string::npos);
}

TEST(Cli, RecommendNamesARegime) {
  TempFile file("recommend.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=3", "--min-tasks=30",
                 "--max-tasks=40", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r = run({"recommend", file.str(), "--capacity-factor=1.05"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("capacity regime:"), std::string::npos);
  EXPECT_NE(r.out.find("recommended heuristic:"), std::string::npos);
}

TEST(Cli, ImproveReportsGain) {
  TempFile file("improve.trace");
  ASSERT_EQ(run({"generate", "--kernel=CCSD", "--seed=4", "--min-tasks=25",
                 "--max-tasks=30", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r = run({"improve", file.str(), "--capacity-factor=1.25",
                        "--iterations=400"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("improved makespan"), std::string::npos);
}

TEST(Cli, MissingFileIsAUserError) {
  const CliRun r = run({"info", "/nonexistent/path.trace"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("error:"), std::string::npos);
}

TEST(Cli, UnknownHeuristicIsAUserError) {
  TempFile file("badheur.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=1", "--min-tasks=20",
                 "--max-tasks=25", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r =
      run({"schedule", file.str(), "--heuristic=NOPE", "--capacity-factor=2"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("unknown heuristic"), std::string::npos);
}

TEST(Cli, ConflictingCapacityFlagsRejected) {
  TempFile file("conflict.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=1", "--min-tasks=20",
                 "--max-tasks=25", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r = run({"compare", file.str(), "--capacity=1000000",
                        "--capacity-factor=1.5"});
  EXPECT_EQ(r.exit_code, 1);
}

TEST(Cli, GenerateValidatesTaskRange) {
  TempFile file("range.trace");
  const CliRun r = run({"generate", "--kernel=HF", "--min-tasks=50",
                        "--max-tasks=10", "--out=" + file.str()});
  EXPECT_EQ(r.exit_code, 1);
}

TEST(CommandLineParse, MalformedNumericFlagValuesRejected) {
  const char* argv[] = {"x", "--capacity-factor=abc", "--iterations=12x",
                        "--seed=-3"};
  const CommandLine cmd = parse_command_line(4, argv);
  EXPECT_THROW((void)cmd.flag_or("capacity-factor", 1.5),
               std::invalid_argument);
  EXPECT_THROW((void)cmd.count_or("iterations", 100), std::invalid_argument);
  EXPECT_THROW((void)cmd.count_or("seed", 1), std::invalid_argument);
  EXPECT_EQ(cmd.count_or("absent", 7u), 7u);
}

TEST(Cli, MalformedCapacityFactorIsAClearUserError) {
  TempFile file("badfactor.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=1", "--min-tasks=20",
                 "--max-tasks=25", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r = run({"compare", file.str(), "--capacity-factor=abc"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("invalid value for --capacity-factor"),
            std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("'abc'"), std::string::npos) << r.err;

  const CliRun neg = run({"compare", file.str(), "--capacity-factor=-2"});
  EXPECT_EQ(neg.exit_code, 1);
  EXPECT_NE(neg.err.find("must be positive"), std::string::npos) << neg.err;

  // NaN parses as a double but is not a usable capacity.
  const CliRun nan_cap = run({"compare", file.str(), "--capacity=nan"});
  EXPECT_EQ(nan_cap.exit_code, 1);
  EXPECT_NE(nan_cap.err.find("must be positive"), std::string::npos)
      << nan_cap.err;
}

TEST(Cli, CompareRejectsBatchWindow) {
  TempFile file("comparebatch.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=1", "--min-tasks=20",
                 "--max-tasks=25", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r =
      run({"compare", file.str(), "--capacity-factor=1.5", "--batch=4"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("auto-batch"), std::string::npos) << r.err;
}

TEST(Cli, SolveRunsAnyRegisteredSolver) {
  TempFile file("solve.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=6", "--min-tasks=30",
                 "--max-tasks=40", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r =
      run({"solve", file.str(), "--capacity-factor=1.25"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("winner:"), std::string::npos);
  EXPECT_NE(r.out.find("ratio to OMIM"), std::string::npos);
  EXPECT_NE(r.out.find("wall time:"), std::string::npos);

  const CliRun named = run({"solve", file.str(), "--solver=OOLCMR",
                            "--capacity-factor=1.25"});
  ASSERT_EQ(named.exit_code, 0) << named.err;
  EXPECT_NE(named.out.find("winner: OOLCMR"), std::string::npos);

  const CliRun batched = run({"solve", file.str(), "--solver=auto-batch:8",
                              "--capacity-factor=1.25"});
  ASSERT_EQ(batched.exit_code, 0) << batched.err;
  EXPECT_NE(batched.out.find("batch wins"), std::string::npos);
}

TEST(Cli, SolveUnknownSolverListsAvailable) {
  TempFile file("badsolver.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=1", "--min-tasks=20",
                 "--max-tasks=25", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r = run({"solve", file.str(), "--solver=nope",
                        "--capacity-factor=1.5"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("unknown solver"), std::string::npos) << r.err;
  EXPECT_NE(r.err.find("available:"), std::string::npos) << r.err;
}

TEST(Cli, ListSolversBothSpellings) {
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"solvers"},
        std::vector<std::string>{"--list-solvers"}}) {
    const CliRun r = run(args);
    ASSERT_EQ(r.exit_code, 0) << r.err;
    EXPECT_NE(r.out.find("auto-batch"), std::string::npos);
    EXPECT_NE(r.out.find("branch-bound"), std::string::npos);
    EXPECT_NE(r.out.find("OOLCMR"), std::string::npos);
    EXPECT_NE(r.out.find("duplex-balance"), std::string::npos);
    // Per-solver channel capability column.
    EXPECT_NE(r.out.find("channels"), std::string::npos);
    EXPECT_NE(r.out.find("any"), std::string::npos);
    // Per-solver dependency capability column; milp is the one builtin
    // that schedules independent task sets only.
    EXPECT_NE(r.out.find("deps"), std::string::npos);
    EXPECT_NE(r.out.find("independent"), std::string::npos);
  }
}

TEST(Cli, EmptyTraceIsAClearUserError) {
  // A header-only trace has zero tasks; "solving" it used to print a
  // degenerate all-zero analysis. Every scheduling command must point at
  // the real problem and exit nonzero instead.
  TempFile file("empty.trace");
  {
    std::ofstream out(file.str());
    out << "# dts-trace v1\n";
  }
  for (const char* command : {"solve", "schedule", "compare", "recommend",
                              "improve", "solve-batch"}) {
    const CliRun r = run({command, file.str(), "--capacity-factor=1.5"});
    EXPECT_EQ(r.exit_code, 1) << command;
    EXPECT_NE(r.err.find("contains no tasks"), std::string::npos)
        << command << ": " << r.err;
  }
  // info still works on an empty trace (inspecting one is legitimate).
  EXPECT_EQ(run({"info", file.str()}).exit_code, 0);
}

TEST(Cli, SolveBatchEmitsCsvAndThroughput) {
  TempFile a("batch_a.trace");
  TempFile b("batch_b.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=21", "--min-tasks=30",
                 "--max-tasks=40", "--out=" + a.str()})
                .exit_code,
            0);
  ASSERT_EQ(run({"generate", "--kernel=CCSD", "--seed=22", "--min-tasks=30",
                 "--max-tasks=40", "--out=" + b.str()})
                .exit_code,
            0);
  const CliRun r = run({"solve-batch", a.str(), b.str(), a.str(),
                        "--capacity-factor=1.25", "--workers=2"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find(
                "trace,solver,status,winner,makespan,ratio_to_omim,"
                "wall_seconds"),
            std::string::npos);
  EXPECT_NE(r.out.find(a.str() + ",auto,done,"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find(b.str() + ",auto,done,"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("jobs/sec"), std::string::npos);
  EXPECT_NE(r.out.find("3 jobs on 2 workers"), std::string::npos);

  // --csv=FILE moves the table into the file; the summary stays on stdout.
  TempFile csv("batch_out.csv");
  const CliRun to_file =
      run({"solve-batch", a.str(), b.str(), "--capacity-factor=1.25",
           "--workers=2", "--csv=" + csv.str(), "--policy=priority"});
  ASSERT_EQ(to_file.exit_code, 0) << to_file.err;
  EXPECT_EQ(to_file.out.find("trace,solver"), std::string::npos);
  std::ifstream in(csv.str());
  std::stringstream csv_text;
  csv_text << in.rdbuf();
  EXPECT_NE(csv_text.str().find("trace,solver,status"), std::string::npos);

  const CliRun bad_policy =
      run({"solve-batch", a.str(), "--capacity-factor=1.25",
           "--policy=fastest"});
  EXPECT_EQ(bad_policy.exit_code, 1);
  EXPECT_NE(bad_policy.err.find("unknown --policy"), std::string::npos);

  const CliRun no_files = run({"solve-batch", "--capacity-factor=1.25"});
  EXPECT_EQ(no_files.exit_code, 1);
  EXPECT_NE(no_files.err.find("at least one trace file"), std::string::npos);

  // Jobs that expire before producing any schedule are not success: a
  // zero deadline is already expired at submission, so every job lands
  // in kCancelled without a result and the command exits nonzero.
  const CliRun expired =
      run({"solve-batch", a.str(), b.str(), "--capacity-factor=1.25",
           "--workers=1", "--time-limit=0"});
  EXPECT_EQ(expired.exit_code, 1) << expired.out;
  EXPECT_NE(expired.out.find("expired without a result"), std::string::npos)
      << expired.out;
}

TEST(Cli, MachinesListsEveryPresetBothSpellings) {
  for (const std::vector<std::string>& args :
       {std::vector<std::string>{"machines"},
        std::vector<std::string>{"--list-machines"}}) {
    const CliRun r = run(args);
    ASSERT_EQ(r.exit_code, 0) << r.err;
    for (const char* machine :
         {"paper", "cascade", "pcie-gpu", "duplex-pcie", "summit-node",
          "nvlink"}) {
      EXPECT_NE(r.out.find(machine), std::string::npos) << machine;
    }
    EXPECT_NE(r.out.find("H2D+D2H"), std::string::npos);
  }
}

TEST(Cli, RecostPipesIntoSolve) {
  // The acceptance pipeline: dts recost T --machine=nvlink | dts solve -.
  TempFile file("recost.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=9", "--min-tasks=30",
                 "--max-tasks=40", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun recost = run({"recost", file.str(), "--machine=nvlink"});
  ASSERT_EQ(recost.exit_code, 0) << recost.err;
  EXPECT_NE(recost.out.find("# dts-trace v3"), std::string::npos);
  EXPECT_NE(recost.out.find("bytes="), std::string::npos);

  const CliRun solved =
      run({"solve", "-", "--capacity-factor=1.25"}, recost.out);
  ASSERT_EQ(solved.exit_code, 0) << solved.err;
  EXPECT_NE(solved.out.find("winner:"), std::string::npos);

  // Re-costing for a faster machine must shrink the trace's total comm:
  // solve the original and the nvlink-bound trace and compare makespans.
  const CliRun base = run({"solve", file.str(), "--solver=OS",
                           "--capacity-factor=1.25"});
  const CliRun fast = run({"solve", file.str(), "--solver=OS",
                           "--capacity-factor=1.25", "--machine=nvlink"});
  ASSERT_EQ(base.exit_code, 0) << base.err;
  ASSERT_EQ(fast.exit_code, 0) << fast.err;
  EXPECT_NE(fast.out.find("on machine nvlink"), std::string::npos);
  EXPECT_NE(base.out, fast.out);

  // --out writes the trace to a file instead of stdout.
  TempFile out_file("recost_out.trace");
  const CliRun to_file = run({"recost", file.str(), "--machine=paper",
                              "--out=" + out_file.str()});
  ASSERT_EQ(to_file.exit_code, 0) << to_file.err;
  EXPECT_EQ(to_file.out.find("# dts-trace"), std::string::npos);
  std::ifstream in(out_file.str());
  std::stringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("# dts-trace v3"), std::string::npos);

  // Unknown machines list the registry, and --machine is required.
  const CliRun unknown = run({"recost", file.str(), "--machine=nope"});
  EXPECT_EQ(unknown.exit_code, 1);
  EXPECT_NE(unknown.err.find("unknown machine"), std::string::npos);
  EXPECT_NE(unknown.err.find("paper"), std::string::npos);
  EXPECT_EQ(run({"recost", file.str()}).exit_code, 1);
}

TEST(Cli, RecostRejectsTracesWithoutByteAnnotations) {
  TempFile file("recost_v1.trace");
  {
    std::ofstream out(file.str());
    out << "# dts-trace v1\ntask a 1 2 3\n";
  }
  const CliRun r = run({"recost", file.str(), "--machine=paper"});
  EXPECT_EQ(r.exit_code, 1);
  EXPECT_NE(r.err.find("byte-annotated"), std::string::npos) << r.err;
}

TEST(Cli, SolveMachineRecostsByteAnnotatedTraces) {
  // A bytes-only (time-less) trace solves only with --machine.
  TempFile file("timeless.trace");
  {
    std::ofstream out(file.str());
    out << "# dts-trace v3\n"
        << "task a ? 0.001 100000 bytes=100000\n"
        << "task b ? 0.002 50000 bytes=50000\n";
  }
  const CliRun without = run({"solve", file.str(), "--capacity-factor=2"});
  EXPECT_EQ(without.exit_code, 1);
  EXPECT_NE(without.err.find("time-less"), std::string::npos) << without.err;

  const CliRun with_machine = run({"solve", file.str(), "--capacity-factor=2",
                                   "--machine=paper"});
  ASSERT_EQ(with_machine.exit_code, 0) << with_machine.err;
  EXPECT_NE(with_machine.out.find("winner:"), std::string::npos);

  // recommend never reaches solve()'s guard, so it repeats it: a
  // time-less trace is rejected without --machine and costed with it.
  const CliRun rec_without = run({"recommend", file.str(),
                                  "--capacity-factor=2"});
  EXPECT_EQ(rec_without.exit_code, 1);
  EXPECT_NE(rec_without.err.find("time-less"), std::string::npos)
      << rec_without.err;
  const CliRun rec_with = run({"recommend", file.str(), "--capacity-factor=2",
                               "--machine=paper"});
  ASSERT_EQ(rec_with.exit_code, 0) << rec_with.err;
  EXPECT_NE(rec_with.out.find("recommended heuristic:"), std::string::npos);

  // --machine on a trace without byte annotations would keep the old
  // times while reporting the new machine's name — rejected, same as
  // recost.
  TempFile legacy("legacy_v1.trace");
  {
    std::ofstream out(legacy.str());
    out << "# dts-trace v1\ntask a 1 2 3\n";
  }
  const CliRun hybrid = run({"solve", legacy.str(), "--capacity-factor=2",
                             "--machine=nvlink"});
  EXPECT_EQ(hybrid.exit_code, 1);
  EXPECT_NE(hybrid.err.find("byte-annotated"), std::string::npos)
      << hybrid.err;
}

TEST(Cli, SolveBatchAcceptsMachine) {
  // The SolverPool service path re-costs traces too: same trace, two
  // machines, different makespans in the CSV.
  TempFile file("batch_machine.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=31", "--min-tasks=30",
                 "--max-tasks=40", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun slow = run({"solve-batch", file.str(), "--solver=OS",
                           "--capacity-factor=1.25", "--workers=1",
                           "--machine=paper"});
  ASSERT_EQ(slow.exit_code, 0) << slow.err;
  const CliRun fast = run({"solve-batch", file.str(), "--solver=OS",
                           "--capacity-factor=1.25", "--workers=1",
                           "--machine=nvlink"});
  ASSERT_EQ(fast.exit_code, 0) << fast.err;
  const auto makespan_cell = [](const std::string& csv) {
    // trace,solver,status,winner,makespan,... -> the 5th cell of row 2.
    std::istringstream lines(csv);
    std::string header, row;
    std::getline(lines, header);
    std::getline(lines, row);
    std::istringstream cells(row);
    std::string cell;
    for (int i = 0; i < 5; ++i) std::getline(cells, cell, ',');
    return cell;
  };
  EXPECT_NE(makespan_cell(slow.out), makespan_cell(fast.out))
      << slow.out << fast.out;

  const CliRun unknown = run({"solve-batch", file.str(),
                              "--capacity-factor=1.25", "--machine=nope"});
  EXPECT_EQ(unknown.exit_code, 1);
  EXPECT_NE(unknown.err.find("unknown machine"), std::string::npos);
}

TEST(Cli, CalibrateFitsSamples) {
  TempFile file("samples.txt");
  {
    std::ofstream out(file.str());
    out << "# bytes seconds (perfect affine: 2us + bytes / 1e9)\n";
    for (double bytes = 1000.0; bytes <= 1e8; bytes *= 10.0) {
      out << bytes << " " << (2.0e-6 + bytes / 1.0e9) << "\n";
    }
  }
  const CliRun r = run({"calibrate", file.str()});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("latency"), std::string::npos);
  EXPECT_NE(r.out.find("bandwidth"), std::string::npos);
  EXPECT_NE(r.out.find("1.00GB/s"), std::string::npos) << r.out;

  const CliRun split = run({"calibrate", file.str(), "--split=100000"});
  ASSERT_EQ(split.exit_code, 0) << split.err;
  EXPECT_NE(split.out.find("piecewise"), std::string::npos);

  // Malformed sample lines are a clear user error.
  TempFile bad("bad_samples.txt");
  {
    std::ofstream out(bad.str());
    out << "100 abc\n";
  }
  EXPECT_EQ(run({"calibrate", bad.str()}).exit_code, 1);
  EXPECT_EQ(run({"calibrate", "/nonexistent/samples"}).exit_code, 1);
}

TEST(Cli, InfoReportsByteAnnotationAndTimelessTraces) {
  TempFile file("info_v3.trace");
  ASSERT_EQ(run({"generate", "--kernel=HF", "--seed=12", "--min-tasks=20",
                 "--max-tasks=25", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun annotated = run({"info", file.str()});
  ASSERT_EQ(annotated.exit_code, 0) << annotated.err;
  EXPECT_NE(annotated.out.find("byte-annotated"), std::string::npos);

  TempFile timeless("info_timeless.trace");
  {
    std::ofstream out(timeless.str());
    out << "# dts-trace v3\ntask a ? 1 2 bytes=100\n";
  }
  const CliRun r = run({"info", timeless.str()});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("time-less"), std::string::npos);
  EXPECT_NE(r.out.find("recost"), std::string::npos);
}

TEST(Cli, ScheduleAcceptsBatchWindow) {
  TempFile file("batchflag.trace");
  ASSERT_EQ(run({"generate", "--kernel=CCSD", "--seed=8", "--min-tasks=30",
                 "--max-tasks=40", "--out=" + file.str()})
                .exit_code,
            0);
  const CliRun r = run({"schedule", file.str(), "--heuristic=OOSIM",
                        "--capacity-factor=1.5", "--batch=8"});
  ASSERT_EQ(r.exit_code, 0) << r.err;
  EXPECT_NE(r.out.find("ratio to OMIM"), std::string::npos);

  const CliRun bad = run({"schedule", file.str(), "--heuristic=OOSIM",
                          "--capacity-factor=1.5", "--batch=0"});
  EXPECT_EQ(bad.exit_code, 1);
}

}  // namespace
}  // namespace dts::cli
