/// The multi-channel execution core: single-channel parity against the
/// pre-refactor engine (golden makespans recorded from the seed build),
/// duplex H2D/D2H overlap semantics, per-channel validation and the
/// channel-aware lower bounds.

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "core/bounds.hpp"
#include "core/channels.hpp"
#include "core/registry.hpp"
#include "core/simulate.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "exact/branch_bound.hpp"
#include "exact/lower_bounds.hpp"
#include "trace/generators.hpp"
#include "trace/machine.hpp"
#include "trace/transforms.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

Task channel_task(ChannelId ch, Time comm, Time comp, Mem mem) {
  Task t;
  t.comm = comm;
  t.comp = comp;
  t.mem = mem;
  t.channel = ch;
  return t;
}

// ---------------------------------------------------------------- parity

/// Golden makespans recorded by running every builtin solver over the
/// paper example instances on the pre-refactor (single-link) engine, with
/// SolveOptions::seed = 7. The channel-aware core must reproduce each of
/// them exactly: a one-channel instance is the legacy model.
struct GoldenCase {
  const char* instance;
  const char* solver;
  double makespan;
};

constexpr GoldenCase kGolden[] = {
    {"table2", "OS", 29},
    {"table2", "OOSIM", 32},
    {"table2", "IOCMS", 32},
    {"table2", "DOCPS", 32},
    {"table2", "IOCCS", 30},
    {"table2", "DOCCS", 29},
    {"table2", "GG", 22.5},
    {"table2", "BP", 29},
    {"table2", "LCMR", 29},
    {"table2", "SCMR", 32},
    {"table2", "MAMR", 32},
    {"table2", "OOLCMR", 32},
    {"table2", "OOSCMR", 32},
    {"table2", "OOMAMR", 32},
    {"table2", "auto", 22.5},
    {"table2", "auto:static", 22.5},
    {"table2", "auto-batch:2", 28},
    {"table2", "local-search", 22.5},
    {"table2", "branch-bound", 22},
    {"table2", "exhaustive", 22.5},
    {"table2", "window:3", 27.5},
    {"table2", "window:3:pair", 27.5},
    {"table3", "OS", 14},
    {"table3", "OOSIM", 15},
    {"table3", "IOCMS", 16},
    {"table3", "DOCPS", 14},
    {"table3", "IOCCS", 16},
    {"table3", "DOCCS", 17},
    {"table3", "GG", 15},
    {"table3", "BP", 16},
    {"table3", "LCMR", 14},
    {"table3", "SCMR", 16},
    {"table3", "MAMR", 14},
    {"table3", "OOLCMR", 14},
    {"table3", "OOSCMR", 14},
    {"table3", "OOMAMR", 14},
    {"table3", "auto", 14},
    {"table3", "auto:static", 14},
    {"table3", "auto-batch:2", 14},
    {"table3", "local-search", 14},
    {"table3", "branch-bound", 14},
    {"table3", "exhaustive", 14},
    {"table3", "window:3", 14},
    {"table3", "window:3:pair", 14},
    {"table4", "OS", 23},
    {"table4", "OOSIM", 24},
    {"table4", "IOCMS", 25},
    {"table4", "DOCPS", 24},
    {"table4", "IOCCS", 23},
    {"table4", "DOCCS", 22},
    {"table4", "GG", 24},
    {"table4", "BP", 23},
    {"table4", "LCMR", 23},
    {"table4", "SCMR", 25},
    {"table4", "MAMR", 24},
    {"table4", "OOLCMR", 24},
    {"table4", "OOSCMR", 24},
    {"table4", "OOMAMR", 24},
    {"table4", "auto", 22},
    {"table4", "auto:static", 22},
    {"table4", "auto-batch:2", 25},
    {"table4", "local-search", 22},
    {"table4", "branch-bound", 22},
    {"table4", "exhaustive", 22},
    {"table4", "window:3", 23},
    {"table4", "window:3:pair", 23},
    {"table5", "OS", 39},
    {"table5", "OOSIM", 38},
    {"table5", "IOCMS", 35},
    {"table5", "DOCPS", 33},
    {"table5", "IOCCS", 35},
    {"table5", "DOCCS", 34},
    {"table5", "GG", 37},
    {"table5", "BP", 39},
    {"table5", "LCMR", 33},
    {"table5", "SCMR", 35},
    {"table5", "MAMR", 33},
    {"table5", "OOLCMR", 33},
    {"table5", "OOSCMR", 35},
    {"table5", "OOMAMR", 33},
    {"table5", "auto", 33},
    {"table5", "auto:static", 33},
    {"table5", "auto-batch:2", 38},
    {"table5", "local-search", 32},
    {"table5", "branch-bound", 32},
    {"table5", "exhaustive", 32},
    {"table5", "window:3", 36},
    {"table5", "window:3:pair", 36},
};

std::pair<Instance, Mem> named_instance(const std::string& name) {
  if (name == "table2") return {testing::table2_instance(), testing::kTable2Capacity};
  if (name == "table3") return {testing::table3_instance(), testing::kTable3Capacity};
  if (name == "table4") return {testing::table4_instance(), testing::kTable4Capacity};
  return {testing::table5_instance(), testing::kTable5Capacity};
}

TEST(SingleChannelParity, EveryBuiltinSolverMatchesTheSeedMakespans) {
  for (const GoldenCase& g : kGolden) {
    const auto [inst, capacity] = named_instance(g.instance);
    SolveRequest request;
    request.instance = inst;
    request.capacity = capacity;
    SolveOptions options;
    options.seed = 7;
    const SolveResult res = solve(request, g.solver, options);
    EXPECT_DOUBLE_EQ(res.makespan, g.makespan)
        << g.instance << " / " << g.solver;
  }
}

TEST(SingleChannelParity, ExplicitSingleChannelSetTakesTheLegacyPath) {
  // Passing the machine's one-link ChannelSet is equivalent to passing
  // nothing at all.
  const Instance inst = testing::table4_instance();
  SolveRequest bare{.instance = inst, .capacity = testing::kTable4Capacity};
  SolveRequest with_set = bare;
  with_set.channels = MachineModel::cascade().channel_set();
  for (const char* solver : {"auto", "SCMR", "window:3", "branch-bound"}) {
    EXPECT_DOUBLE_EQ(solve(bare, solver).makespan,
                     solve(with_set, solver).makespan)
        << solver;
  }
}

// ------------------------------------------------------- engine semantics

TEST(MultiChannelEngine, OppositeDirectionsOverlap) {
  ExecutionState s(kInfiniteMem, 2);
  const TaskTimes in = s.start(channel_task(kChannelH2D, 5, 2, 1));
  const TaskTimes out = s.start(channel_task(kChannelD2H, 3, 0, 1));
  EXPECT_DOUBLE_EQ(in.comm_start, 0.0);
  EXPECT_DOUBLE_EQ(out.comm_start, 0.0);  // D2H engine was never busy
  EXPECT_DOUBLE_EQ(s.comm_available(kChannelH2D), 5.0);
  EXPECT_DOUBLE_EQ(s.comm_available(kChannelD2H), 3.0);
}

TEST(MultiChannelEngine, SameChannelSerializes) {
  ExecutionState s(kInfiniteMem, 2);
  s.start(channel_task(kChannelH2D, 5, 0, 1));
  const TaskTimes second = s.start(channel_task(kChannelH2D, 2, 0, 1));
  EXPECT_DOUBLE_EQ(second.comm_start, 5.0);
}

TEST(MultiChannelEngine, MemoryGatesAcrossChannelsNotTransfers) {
  // A D2H transfer waits only for *memory*, not for the H2D engine: task C
  // starts the instant task A's computation releases its footprint, while
  // task B is still mid-transfer on the other engine.
  const Instance inst(std::vector<Task>{
      channel_task(kChannelH2D, 1, 1, 1),    // A: held [0, 2)
      channel_task(kChannelH2D, 4, 1, 1),    // B: comm [1, 5)
      channel_task(kChannelD2H, 1, 1, 1)});  // C
  const Schedule s = simulate_order(inst, inst.submission_order(), 2.0);
  EXPECT_DOUBLE_EQ(s[1].comm_start, 1.0);
  EXPECT_DOUBLE_EQ(s[2].comm_start, 2.0);  // A's release, mid-B
  EXPECT_TRUE(testing::feasible(inst, s, 2.0));
}

TEST(MultiChannelEngine, RejectsUnknownChannel) {
  ExecutionState s(kInfiniteMem, 1);
  EXPECT_THROW((void)s.start(channel_task(1, 1, 1, 0)), std::out_of_range);
}

TEST(MultiChannelEngine, SnapshotRoundTripKeepsChannelClocks) {
  ExecutionState s(kInfiniteMem, 2);
  s.start(channel_task(kChannelH2D, 5, 2, 1));
  s.start(channel_task(kChannelD2H, 3, 0, 1));
  const ExecutionState::Snapshot snap = s.snapshot();
  ASSERT_EQ(snap.comm_available.size(), 2u);
  EXPECT_THROW((void)snap.single_link_available(), std::logic_error);
  ExecutionState r(kInfiniteMem, snap);
  EXPECT_EQ(r.num_channels(), 2u);
  EXPECT_DOUBLE_EQ(r.comm_available(kChannelH2D), 5.0);
  EXPECT_DOUBLE_EQ(r.comm_available(kChannelD2H), 3.0);
}

// ------------------------------------------------------------ validation

TEST(MultiChannelValidation, CrossChannelOverlapIsFeasible) {
  std::vector<Task> tasks = {channel_task(kChannelH2D, 4, 1, 1),
                             channel_task(kChannelD2H, 4, 0, 1)};
  const Instance inst(std::move(tasks));
  Schedule sched(2);
  sched.set(0, 0.0, 4.0);
  sched.set(1, 0.0, 5.0);  // same transfer window, different engine
  EXPECT_TRUE(validate_schedule(inst, sched, kInfiniteMem).ok());
}

TEST(MultiChannelValidation, SameChannelOverlapIsCaught) {
  std::vector<Task> tasks = {channel_task(kChannelD2H, 4, 1, 1),
                             channel_task(kChannelD2H, 4, 0, 1)};
  const Instance inst(std::move(tasks));
  Schedule sched(2);
  sched.set(0, 0.0, 4.0);
  sched.set(1, 2.0, 6.0);
  const ValidationReport report =
      validate_schedule(inst, sched, kInfiniteMem);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().kind, Violation::Kind::kCommOverlap);
}

// ----------------------------------------------------------- duplex wins

Instance symmetric_duplex_workload() {
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(channel_task(kChannelH2D, 2.0, 1.0, 1.0));
    tasks.push_back(channel_task(kChannelD2H, 2.0, 0.0, 1.0));
  }
  return Instance(std::move(tasks));
}

TEST(DuplexWins, OverlappingDirectionsBeatTheSerializedLink) {
  const Instance duplex = symmetric_duplex_workload();
  const Instance single = merged_channels(duplex);
  ASSERT_EQ(single.num_channels(), 1u);
  const Mem capacity = 4.0;
  for (HeuristicId id : {HeuristicId::kOS, HeuristicId::kSCMR,
                         HeuristicId::kOOSIM, HeuristicId::kOOMAMR}) {
    const Time serialized = heuristic_makespan(id, single, capacity);
    const Time overlapped = heuristic_makespan(id, duplex, capacity);
    EXPECT_TRUE(definitely_less(overlapped, serialized))
        << name_of(id) << ": duplex " << overlapped << " vs single "
        << serialized;
    EXPECT_TRUE(testing::feasible(duplex, run_heuristic(id, duplex, capacity),
                                  capacity));
  }
}

TEST(DuplexWins, GeneratedDuplexTracesBeatTheirMergedTwin) {
  TraceConfig config;
  config.seed = 3;
  config.min_tasks = 60;
  config.max_tasks = 80;
  config.machine = MachineModel::duplex_pcie();
  for (ChemistryKernel kernel :
       {ChemistryKernel::kHartreeFock, ChemistryKernel::kCoupledClusterSD}) {
    const Instance duplex = generate_trace(kernel, config);
    EXPECT_EQ(duplex.num_channels(), 2u);
    const Instance single = merged_channels(duplex);
    const Mem capacity = 2.0 * duplex.min_capacity();
    const Time overlapped =
        heuristic_makespan(HeuristicId::kSCMR, duplex, capacity);
    const Time serialized =
        heuristic_makespan(HeuristicId::kSCMR, single, capacity);
    EXPECT_TRUE(definitely_less(overlapped, serialized)) << to_string(kernel);
  }
}

TEST(DuplexWins, HalfDuplexMachineGeneratesLegacyTraces) {
  TraceConfig config;
  config.seed = 3;
  config.min_tasks = 40;
  config.max_tasks = 50;
  const Instance inst =
      generate_trace(ChemistryKernel::kHartreeFock, config);
  EXPECT_TRUE(inst.single_channel());
}

// ---------------------------------------------------------------- bounds

TEST(ChannelBounds, PerChannelSumsAndAreaBound) {
  const Instance inst = symmetric_duplex_workload();
  const Bounds b = compute_bounds(inst);
  ASSERT_EQ(b.sum_comm_per_channel.size(), 2u);
  EXPECT_DOUBLE_EQ(b.sum_comm_per_channel[kChannelH2D], 16.0);
  EXPECT_DOUBLE_EQ(b.sum_comm_per_channel[kChannelD2H], 16.0);
  EXPECT_DOUBLE_EQ(b.sum_comm, 32.0);
  // Area: max(per-channel load 16, sum comp 8), not the 32 a single link
  // would have to carry.
  EXPECT_DOUBLE_EQ(b.area_lower, 16.0);
  EXPECT_DOUBLE_EQ(b.sequential_upper, 40.0);
}

Instance random_duplex_instance(Rng& rng, std::size_t n) {
  std::vector<Task> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.comm = rng.uniform(0.0, 10.0);
    t.comp = rng.uniform(0.0, 10.0);
    t.mem = rng.uniform(0.1, 10.0);
    t.channel = rng.chance(0.5) ? kChannelD2H : kChannelH2D;
    tasks.push_back(std::move(t));
  }
  return Instance(std::move(tasks));
}

TEST(ChannelBounds, LowerBoundsSandwichEveryHeuristicOnDuplexInstances) {
  Rng rng(404);
  for (int iter = 0; iter < 40; ++iter) {
    const Instance inst = random_duplex_instance(rng, 14);
    const Mem capacity = testing::random_capacity(rng, inst);
    const CapacityAwareBounds lb = capacity_aware_bounds(inst, capacity);
    const Bounds b = compute_bounds(inst);
    for (HeuristicId id : all_heuristic_ids()) {
      const Schedule s = run_heuristic(id, inst, capacity);
      ASSERT_TRUE(testing::feasible(inst, s, capacity)) << name_of(id);
      const Time ms = s.makespan(inst);
      EXPECT_GE(ms + 1e-9, lb.combined) << name_of(id);
      EXPECT_GE(ms + 1e-9, b.omim_lower) << name_of(id);
      EXPECT_LE(ms, b.sequential_upper + 1e-9) << name_of(id);
    }
  }
}

// ------------------------------------------------------- solver surface

TEST(ChannelSolve, MismatchedChannelSetIsRejected) {
  SolveRequest request;
  request.instance = symmetric_duplex_workload();
  request.capacity = 4.0;
  request.channels = MachineModel::cascade().channel_set();  // one engine
  EXPECT_THROW((void)solve(request, "auto"), std::invalid_argument);
}

TEST(ChannelSolve, SimulationSolversHandleDuplexRequests) {
  SolveRequest request;
  request.instance = symmetric_duplex_workload();
  request.capacity = 4.0;
  request.channels = MachineModel::duplex_pcie().channel_set();
  for (const char* solver : {"auto", "SCMR", "window:3", "local-search",
                             "auto-batch:4"}) {
    const SolveResult res = solve(request, solver);
    EXPECT_TRUE(
        validate_schedule(request.instance, res.schedule, request.capacity)
            .ok())
        << solver;
    EXPECT_GE(res.makespan + 1e-9, res.bounds.combined) << solver;
  }
}

TEST(ChannelSolve, PairOrderSolversAcceptMultiChannelInstances) {
  // Since the per-channel order search, branch-bound and window:K:pair
  // solve duplex instances instead of rejecting them; the registry
  // listings report the capability.
  std::vector<Task> tasks = {channel_task(kChannelH2D, 2, 3, 2),
                             channel_task(kChannelH2D, 4, 1, 3),
                             channel_task(kChannelD2H, 3, 0, 2),
                             channel_task(kChannelD2H, 1, 2, 1),
                             channel_task(kChannelH2D, 1, 4, 1)};
  SolveRequest request;
  request.instance = Instance(std::move(tasks));
  request.capacity = 5.0;
  const Bounds bounds = compute_bounds(request.instance);
  const SolveResult bb = solve(request, "branch-bound");
  EXPECT_TRUE(
      testing::feasible(request.instance, bb.schedule, request.capacity));
  EXPECT_GE(bb.makespan + 1e-9, bounds.omim_lower);
  // The pair search covers every permutation schedule, so it can only
  // improve on the exhaustive common-order optimum.
  const SolveResult ex = solve(request, "exhaustive");
  EXPECT_LE(bb.makespan, ex.makespan + 1e-9);

  // A leading window containing only channel-0 tasks used to be the
  // dangerous configuration (carried multi-clock snapshot mid-search);
  // it now solves cleanly.
  std::vector<Task> mixed = {channel_task(kChannelH2D, 1, 1, 1),
                             channel_task(kChannelH2D, 2, 1, 1),
                             channel_task(kChannelD2H, 1, 0, 1)};
  SolveRequest mostly_single;
  mostly_single.instance = Instance(std::move(mixed));
  mostly_single.capacity = 4.0;
  const SolveResult lp = solve(mostly_single, "window:2:pair");
  EXPECT_TRUE(testing::feasible(mostly_single.instance, lp.schedule,
                                mostly_single.capacity));
}

TEST(ChannelSolve, ListingsReportChannelSupport) {
  // The capability field is always populated, and the solvers this PR
  // taught multi-channel solving declare it. (A future solver may
  // legitimately declare "single" — the differential suite then expects
  // it to reject duplex requests.)
  for (const SolverListing& listing : list_solvers()) {
    EXPECT_FALSE(listing.channels.empty()) << listing.name;
    if (listing.name == "branch-bound" || listing.name == "window" ||
        listing.name == "exhaustive" || listing.name == "duplex-balance") {
      EXPECT_EQ(listing.channels, "any") << listing.name;
    }
  }
}

TEST(ChannelSolve, TasksRejectOutOfRangeChannels) {
  Task t = channel_task(kMaxChannels, 1, 1, 1);
  EXPECT_FALSE(is_valid(t));
  EXPECT_THROW((void)Instance(std::vector<Task>{t}), std::invalid_argument);
  // The wrap-around value that would alias back to "one channel" in
  // 32-bit arithmetic is equally invalid.
  t.channel = std::numeric_limits<ChannelId>::max();
  EXPECT_THROW((void)Instance(std::vector<Task>{t}), std::invalid_argument);
}

TEST(ChannelSet, ValidatesItsSpecs) {
  EXPECT_THROW(ChannelSet(std::vector<ChannelSpec>{}), std::invalid_argument);
  EXPECT_THROW(ChannelSet({ChannelSpec{"x", 0.0, 0.0}}),
               std::invalid_argument);
  EXPECT_THROW(ChannelSet({ChannelSpec{"x", 1e9, -1.0}}),
               std::invalid_argument);
  const ChannelSet duplex = ChannelSet::duplex(2e9, 1e9, 1e-6);
  EXPECT_EQ(duplex.size(), 2u);
  EXPECT_FALSE(duplex.single());
  EXPECT_EQ(duplex[kChannelH2D].name, "H2D");
  EXPECT_EQ(duplex[kChannelD2H].name, "D2H");
  EXPECT_GT(duplex[kChannelD2H].transfer_time(1e9),
            duplex[kChannelH2D].transfer_time(1e9));
}

}  // namespace
}  // namespace dts
