#include "heuristics/static_orders.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/johnson.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

bool is_permutation_of_all(const std::vector<TaskId>& order, std::size_t n) {
  if (order.size() != n) return false;
  std::vector<bool> seen(n, false);
  for (TaskId id : order) {
    if (id >= n || seen[id]) return false;
    seen[id] = true;
  }
  return true;
}

TEST(StaticOrders, SubmissionIsIdentity) {
  const Instance inst = testing::table3_instance();
  EXPECT_EQ(static_order(inst, StaticOrderPolicy::kSubmission),
            inst.submission_order());
}

TEST(StaticOrders, JohnsonPolicyMatchesJohnsonOrder) {
  const Instance inst = testing::table5_instance();
  EXPECT_EQ(static_order(inst, StaticOrderPolicy::kJohnson),
            johnson_order(inst));
}

TEST(StaticOrders, SortKeysAreMonotone) {
  Rng rng(5);
  for (int iter = 0; iter < 50; ++iter) {
    const Instance inst = testing::random_instance(rng, 10);
    const auto iocms = static_order(inst, StaticOrderPolicy::kIncreasingComm);
    EXPECT_TRUE(std::is_sorted(
        iocms.begin(), iocms.end(),
        [&](TaskId a, TaskId b) { return inst[a].comm < inst[b].comm; }));
    const auto docps = static_order(inst, StaticOrderPolicy::kDecreasingComp);
    EXPECT_TRUE(std::is_sorted(
        docps.begin(), docps.end(),
        [&](TaskId a, TaskId b) { return inst[a].comp > inst[b].comp; }));
    const auto ioccs =
        static_order(inst, StaticOrderPolicy::kIncreasingCommPlusComp);
    EXPECT_TRUE(std::is_sorted(ioccs.begin(), ioccs.end(),
                               [&](TaskId a, TaskId b) {
                                 return inst[a].total_time() <
                                        inst[b].total_time();
                               }));
    const auto doccs =
        static_order(inst, StaticOrderPolicy::kDecreasingCommPlusComp);
    EXPECT_TRUE(std::is_sorted(doccs.begin(), doccs.end(),
                               [&](TaskId a, TaskId b) {
                                 return inst[a].total_time() >
                                        inst[b].total_time();
                               }));
  }
}

TEST(StaticOrders, EveryPolicyYieldsPermutation) {
  Rng rng(6);
  const Instance inst = testing::random_instance(rng, 15);
  for (StaticOrderPolicy p :
       {StaticOrderPolicy::kSubmission, StaticOrderPolicy::kJohnson,
        StaticOrderPolicy::kIncreasingComm, StaticOrderPolicy::kDecreasingComp,
        StaticOrderPolicy::kIncreasingCommPlusComp,
        StaticOrderPolicy::kDecreasingCommPlusComp}) {
    EXPECT_TRUE(is_permutation_of_all(static_order(inst, p), inst.size()));
  }
}

TEST(StaticOrders, SchedulesFeasibleUnderCapacity) {
  Rng rng(7);
  for (int iter = 0; iter < 50; ++iter) {
    const Instance inst = testing::random_instance(rng, 10);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (StaticOrderPolicy p :
         {StaticOrderPolicy::kJohnson, StaticOrderPolicy::kIncreasingComm,
          StaticOrderPolicy::kDecreasingComp,
          StaticOrderPolicy::kIncreasingCommPlusComp,
          StaticOrderPolicy::kDecreasingCommPlusComp}) {
      const Schedule s = schedule_static(inst, p, capacity);
      EXPECT_TRUE(testing::feasible(inst, s, capacity));
    }
  }
}

TEST(StaticOrders, Acronyms) {
  EXPECT_EQ(to_acronym(StaticOrderPolicy::kSubmission), "OS");
  EXPECT_EQ(to_acronym(StaticOrderPolicy::kJohnson), "OOSIM");
  EXPECT_EQ(to_acronym(StaticOrderPolicy::kIncreasingComm), "IOCMS");
  EXPECT_EQ(to_acronym(StaticOrderPolicy::kDecreasingComp), "DOCPS");
  EXPECT_EQ(to_acronym(StaticOrderPolicy::kIncreasingCommPlusComp), "IOCCS");
  EXPECT_EQ(to_acronym(StaticOrderPolicy::kDecreasingCommPlusComp), "DOCCS");
}

TEST(StaticOrders, StableTieBreaking) {
  // Identical tasks: every order policy must preserve submission order.
  const Instance inst = Instance::from_comm_comp({{2, 3}, {2, 3}, {2, 3}});
  for (StaticOrderPolicy p :
       {StaticOrderPolicy::kIncreasingComm, StaticOrderPolicy::kDecreasingComp,
        StaticOrderPolicy::kIncreasingCommPlusComp,
        StaticOrderPolicy::kDecreasingCommPlusComp}) {
    EXPECT_EQ(static_order(inst, p), (std::vector<TaskId>{0, 1, 2}));
  }
}

}  // namespace
}  // namespace dts
