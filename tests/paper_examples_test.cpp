/// Golden tests reproducing the paper's worked examples tick for tick:
///   Fig. 4 — the six static orders on Table 3 with capacity 6;
///   Fig. 5 — the three dynamic heuristics on Table 4 with capacity 6;
///   Fig. 6 — the three corrections heuristics on Table 5 with capacity 9
///            (base order B C D A E as printed in the figure caption);
///   Fig. 3 / Proposition 1 — on Table 2 with capacity 10 the best
///            permutation schedule has makespan 23, but allowing different
///            communication and computation orders reaches 22.

#include <gtest/gtest.h>

#include "core/johnson.hpp"
#include "core/simulate.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"
#include "heuristics/corrections.hpp"
#include "heuristics/dynamic.hpp"
#include "heuristics/static_orders.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

using testing::feasible;
using testing::kTable2Capacity;
using testing::kTable3Capacity;
using testing::kTable4Capacity;
using testing::kTable5Capacity;
using testing::table2_instance;
using testing::table3_instance;
using testing::table4_instance;
using testing::table5_instance;
using testing::table5_paper_omim_order;

// Task ids in the Tables are alphabetical: A=0, B=1, ...
constexpr TaskId A = 0, B = 1, C = 2, D = 3, E = 4, F = 5;

void expect_times(const Schedule& s, TaskId id, Time comm_start,
                  Time comp_start) {
  EXPECT_DOUBLE_EQ(s[id].comm_start, comm_start)
      << "comm start of task " << id;
  EXPECT_DOUBLE_EQ(s[id].comp_start, comp_start)
      << "comp start of task " << id;
}

// ---------------------------------------------------------------- Fig. 4

TEST(Fig4StaticOrders, JohnsonInfiniteMemoryMakespan12) {
  const Instance inst = table3_instance();
  EXPECT_EQ(johnson_order(inst), (std::vector<TaskId>{B, C, A, D}));
  const Schedule s = johnson_schedule(inst);
  EXPECT_DOUBLE_EQ(s.makespan(inst), 12.0);
  expect_times(s, B, 0, 1);
  expect_times(s, C, 1, 5);
  expect_times(s, A, 5, 9);
  expect_times(s, D, 8, 11);
}

TEST(Fig4StaticOrders, OosimMakespan15) {
  const Instance inst = table3_instance();
  const Schedule s =
      schedule_static(inst, StaticOrderPolicy::kJohnson, kTable3Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable3Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 15.0);
  expect_times(s, B, 0, 1);
  expect_times(s, C, 1, 5);
  expect_times(s, A, 9, 12);   // blocked: C holds 4 of 6 until t=9
  expect_times(s, D, 12, 14);
}

TEST(Fig4StaticOrders, IocmsMakespan16) {
  const Instance inst = table3_instance();
  const Schedule s = schedule_static(inst, StaticOrderPolicy::kIncreasingComm,
                                     kTable3Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable3Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 16.0);
  expect_times(s, B, 0, 1);
  expect_times(s, D, 1, 4);
  expect_times(s, A, 3, 6);
  expect_times(s, C, 8, 12);
}

TEST(Fig4StaticOrders, DocpsMakespan14) {
  const Instance inst = table3_instance();
  const Schedule s = schedule_static(inst, StaticOrderPolicy::kDecreasingComp,
                                     kTable3Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable3Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 14.0);
  expect_times(s, C, 0, 4);
  expect_times(s, B, 4, 8);
  expect_times(s, A, 8, 11);
  expect_times(s, D, 11, 13);
}

TEST(Fig4StaticOrders, IoccsMakespan16) {
  const Instance inst = table3_instance();
  const Schedule s = schedule_static(
      inst, StaticOrderPolicy::kIncreasingCommPlusComp, kTable3Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable3Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 16.0);
  expect_times(s, D, 0, 2);
  expect_times(s, B, 2, 3);
  expect_times(s, A, 3, 6);
  expect_times(s, C, 8, 12);
}

TEST(Fig4StaticOrders, DoccsMakespan17) {
  const Instance inst = table3_instance();
  const Schedule s = schedule_static(
      inst, StaticOrderPolicy::kDecreasingCommPlusComp, kTable3Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable3Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 17.0);
  expect_times(s, C, 0, 4);
  expect_times(s, A, 8, 11);
  expect_times(s, B, 11, 13);
  expect_times(s, D, 12, 16);
}

// ---------------------------------------------------------------- Fig. 5

TEST(Fig5Dynamic, LcmrMakespan23) {
  const Instance inst = table4_instance();
  const Schedule s =
      schedule_dynamic(inst, DynamicCriterion::kLargestComm, kTable4Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable4Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 23.0);
  expect_times(s, B, 0, 1);   // min induced idle beats the LCMR criterion
  expect_times(s, D, 1, 7);
  expect_times(s, A, 8, 11);
  expect_times(s, C, 13, 17);
}

TEST(Fig5Dynamic, ScmrMakespan25) {
  const Instance inst = table4_instance();
  const Schedule s =
      schedule_dynamic(inst, DynamicCriterion::kSmallestComm, kTable4Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable4Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 25.0);
  expect_times(s, B, 0, 1);
  expect_times(s, A, 1, 7);
  expect_times(s, C, 9, 13);
  expect_times(s, D, 19, 24);
}

TEST(Fig5Dynamic, MamrMakespan24) {
  const Instance inst = table4_instance();
  const Schedule s = schedule_dynamic(inst, DynamicCriterion::kMaxAcceleration,
                                      kTable4Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable4Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 24.0);
  expect_times(s, B, 0, 1);
  expect_times(s, C, 1, 7);
  expect_times(s, A, 13, 16);
  expect_times(s, D, 18, 23);
}

// ---------------------------------------------------------------- Fig. 6

TEST(Fig6Corrections, OolcmrMakespan33) {
  const Instance inst = table5_instance();
  const Schedule s = schedule_corrected_with_order(
      inst, table5_paper_omim_order(), DynamicCriterion::kLargestComm,
      kTable5Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable5Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 33.0);
  expect_times(s, B, 0, 2);
  expect_times(s, D, 2, 8);    // C (8) does not fit with B: divert to D
  expect_times(s, A, 8, 12);
  expect_times(s, E, 12, 15);
  expect_times(s, C, 17, 25);
}

TEST(Fig6Corrections, OoscmrMakespan35) {
  const Instance inst = table5_instance();
  const Schedule s = schedule_corrected_with_order(
      inst, table5_paper_omim_order(), DynamicCriterion::kSmallestComm,
      kTable5Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable5Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 35.0);
  expect_times(s, B, 0, 2);
  expect_times(s, E, 2, 8);
  expect_times(s, A, 5, 10);
  expect_times(s, D, 10, 15);
  expect_times(s, C, 19, 27);
}

TEST(Fig6Corrections, OomamrMakespan33) {
  const Instance inst = table5_instance();
  const Schedule s = schedule_corrected_with_order(
      inst, table5_paper_omim_order(), DynamicCriterion::kMaxAcceleration,
      kTable5Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable5Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 33.0);
  expect_times(s, B, 0, 2);
  expect_times(s, D, 2, 8);
  expect_times(s, E, 8, 12);
  expect_times(s, A, 12, 16);
  expect_times(s, C, 17, 25);
}

TEST(Fig6Corrections, PaperBaseOrderIsAlternativeJohnsonOptimum) {
  // Fig. 6's caption prints the OMIM order as B C D A E while Algorithm 1
  // as written yields B C D E A; both are optimal (makespan 25) — the
  // instance has a Johnson tie. Keep both facts pinned down.
  const Instance inst = table5_instance();
  EXPECT_EQ(johnson_order(inst), (std::vector<TaskId>{B, C, D, E, A}));
  const Time ms_algorithm =
      makespan_of_order(inst, johnson_order(inst), kInfiniteMem);
  const Time ms_caption =
      makespan_of_order(inst, table5_paper_omim_order(), kInfiniteMem);
  EXPECT_DOUBLE_EQ(ms_algorithm, 25.0);
  EXPECT_DOUBLE_EQ(ms_caption, 25.0);
}

// ------------------------------------------------- Fig. 3 / Proposition 1

TEST(Fig3Proposition1, PaperScheduleFig3aReaches23) {
  // Fig. 3a's schedule (common order A B D E C F) has makespan 23 under
  // our engine — tick for tick the figure's timeline.
  const Instance inst = table2_instance();
  const std::vector<TaskId> fig3a{A, B, D, E, C, F};
  const Schedule s = simulate_order(inst, fig3a, kTable2Capacity);
  EXPECT_TRUE(feasible(inst, s, kTable2Capacity));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 23.0);
}

TEST(Fig3Proposition1, BestPermutationScheduleIs22Point5) {
  // Documented deviation (EXPERIMENTS.md): the paper reports 23 as the
  // optimal common-order makespan, but the order A B D F C E achieves
  // 22.5 under the paper's own memory semantics (memory released at a
  // computation-finish instant is available to a transfer starting at
  // that same instant — the semantics its Fig. 2 reduction pattern and
  // Fig. 4 DOCPS schedule require). F's transfer starts at t=8 exactly
  // when B's computation releases 4 units, leaving D(3)+F(7) = C = 10.
  // Proposition 1 itself still holds: 22 (pair) < 22.5 (permutation).
  const Instance inst = table2_instance();
  const ExhaustiveResult res = best_common_order(inst, kTable2Capacity);
  EXPECT_DOUBLE_EQ(res.makespan, 22.5);
  EXPECT_TRUE(feasible(inst, res.schedule, kTable2Capacity));
  EXPECT_TRUE(res.schedule.is_permutation_schedule());

  const std::vector<TaskId> witness{A, B, D, F, C, E};
  EXPECT_DOUBLE_EQ(makespan_of_order(inst, witness, kTable2Capacity), 22.5);
}

TEST(Fig3Proposition1, DifferentOrdersReach22) {
  const Instance inst = table2_instance();
  const PairOrderResult res = best_pair_order(inst, kTable2Capacity);
  EXPECT_DOUBLE_EQ(res.makespan, 22.0);
  EXPECT_TRUE(feasible(inst, res.schedule, kTable2Capacity));
  // The improvement requires breaking the common order.
  EXPECT_FALSE(res.schedule.is_permutation_schedule());
}

TEST(Fig3Proposition1, PaperScheduleFig3bIsFeasible) {
  // Fig. 3b's winning schedule transfers in order A B C D E F but computes
  // in order A B C E D F (E's half-unit computation slips in front of D's).
  // The semi-active co-simulation of that order pair must land on the
  // paper's makespan of 22.
  const Instance inst = table2_instance();
  Schedule rebuilt(inst.size());
  const std::vector<TaskId> comm_order{A, B, C, D, E, F};
  const std::vector<TaskId> comp_order{A, B, C, E, D, F};
  const auto ms = simulate_pair_order(inst, comm_order, comp_order,
                                      kTable2Capacity, {}, kInfiniteTime,
                                      rebuilt);
  ASSERT_TRUE(ms.has_value());
  EXPECT_DOUBLE_EQ(*ms, 22.0);
  EXPECT_TRUE(feasible(inst, rebuilt, kTable2Capacity));
}

}  // namespace
}  // namespace dts
