#include "support/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace dts {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform(2.5, 7.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 7.5);
  }
}

TEST(Rng, UniformU64Inclusive) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.uniform_u64(3, 6);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u) << "all four values should appear";
}

TEST(Rng, UniformU64DegenerateRange) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_u64(9, 9), 9u);
}

TEST(Rng, UniformMeanNearCenter) {
  Rng rng(19);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, IndexCoversRange) {
  Rng rng(23);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::size_t v = rng.index(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMomentsRoughlyStandard) {
  Rng rng(31);
  double sum = 0.0, sq = 0.0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.03);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Rng, LognormalPositive) {
  Rng rng(37);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(41);
  Rng child = parent.split();
  // The child stream should not replicate the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

}  // namespace
}  // namespace dts
