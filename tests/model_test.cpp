/// Tests for the src/model/ subsystem: TransferModel evaluation, the
/// Machine descriptor + MachineRegistry (mirroring the solver registry's
/// contract), bind()'s re-costing semantics, and calibrate()'s parameter
/// recovery on synthetic noisy samples (the paper's §3 fit).

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/bounds.hpp"
#include "core/recommend.hpp"
#include "core/solver.hpp"
#include "model/calibrate.hpp"
#include "model/machine.hpp"
#include "model/transfer_model.hpp"
#include "support/rng.hpp"
#include "trace/machine.hpp"

namespace dts {
namespace {

TEST(TransferModel, AffineMatchesTheSharedExpression) {
  const AffineTransferModel m(2.0e-6, 1.2e9);
  for (double bytes : {0.0, 1.0, 80000.0, 1.8e9}) {
    EXPECT_EQ(m.transfer_time(bytes), affine_transfer_time(2.0e-6, 1.2e9, bytes));
  }
  EXPECT_DOUBLE_EQ(m.asymptotic_bandwidth(), 1.2e9);
  EXPECT_DOUBLE_EQ(m.zero_byte_latency(), 2.0e-6);
  EXPECT_NE(m.describe().find("affine"), std::string::npos);
}

TEST(TransferModel, AffineRejectsBadParameters) {
  EXPECT_THROW(AffineTransferModel(-1e-6, 1e9), std::invalid_argument);
  EXPECT_THROW(AffineTransferModel(1e-6, 0.0), std::invalid_argument);
  EXPECT_THROW(AffineTransferModel(1e-6, -1e9), std::invalid_argument);
  EXPECT_THROW(AffineTransferModel(std::nan(""), 1e9), std::invalid_argument);
}

TEST(TransferModel, PiecewisePicksTheActiveRegime) {
  const PiecewiseTransferModel m({
      {0.0, 1.0e-6, 1.0e9},      // small messages
      {65536.0, 4.0e-6, 1.0e10}, // large messages
  });
  // Below the threshold: the eager branch.
  EXPECT_DOUBLE_EQ(m.transfer_time(1024.0),
                   affine_transfer_time(1.0e-6, 1.0e9, 1024.0));
  // At and above the threshold: the rendezvous branch.
  EXPECT_DOUBLE_EQ(m.transfer_time(65536.0),
                   affine_transfer_time(4.0e-6, 1.0e10, 65536.0));
  EXPECT_DOUBLE_EQ(m.transfer_time(1.0e8),
                   affine_transfer_time(4.0e-6, 1.0e10, 1.0e8));
  EXPECT_DOUBLE_EQ(m.asymptotic_bandwidth(), 1.0e10);
  EXPECT_DOUBLE_EQ(m.zero_byte_latency(), 1.0e-6);
}

TEST(TransferModel, PiecewiseRejectsBadSegments) {
  using Segment = PiecewiseTransferModel::Segment;
  EXPECT_THROW(PiecewiseTransferModel({}), std::invalid_argument);
  EXPECT_THROW(PiecewiseTransferModel({Segment{10.0, 1e-6, 1e9}}),
               std::invalid_argument);  // must start at 0
  EXPECT_THROW(PiecewiseTransferModel(
                   {Segment{0.0, 1e-6, 1e9}, Segment{0.0, 1e-6, 1e9}}),
               std::invalid_argument);  // thresholds strictly increasing
}

TEST(Machine, ChannelSetSummarizesTheModels) {
  const Machine machine = machine_from_name("duplex-pcie");
  ASSERT_EQ(machine.num_channels(), 2u);
  EXPECT_TRUE(machine.duplex());
  const ChannelSet channels = machine.channel_set();
  ASSERT_EQ(channels.size(), 2u);
  EXPECT_EQ(channels[0].name, "H2D");
  EXPECT_EQ(channels[1].name, "D2H");
  // The affine summary reproduces the model for affine machines.
  EXPECT_DOUBLE_EQ(channels[0].transfer_time(1e6),
                   machine.transfer_time(kChannelH2D, 1e6));
  EXPECT_DOUBLE_EQ(channels[1].transfer_time(1e6),
                   machine.transfer_time(kChannelD2H, 1e6));
}

TEST(Machine, PresetsShareTheMachineModelConstants) {
  // The registry presets must be exactly the MachineModel constants — one
  // source of truth for the hardware numbers (and the parity guarantee).
  const Machine paper = machine_from_name("paper");
  const MachineModel cascade = MachineModel::cascade();
  for (double bytes : {0.0, 1.0, 176000.0, 1.8e9}) {
    EXPECT_EQ(paper.transfer_time(kChannelH2D, bytes),
              cascade.transfer_time(bytes));
  }
  const Machine duplex = machine_from_name("duplex-pcie");
  const MachineModel duplex_model = MachineModel::duplex_pcie();
  for (double bytes : {0.0, 4096.0, 2.0e9}) {
    EXPECT_EQ(duplex.transfer_time(kChannelH2D, bytes),
              duplex_model.transfer_time(bytes));
    EXPECT_EQ(duplex.transfer_time(kChannelD2H, bytes),
              duplex_model.d2h_transfer_time(bytes));
  }
}

TEST(Machine, RejectsEmptyOrModelLessChannels) {
  EXPECT_THROW(Machine("m", "", {}), std::invalid_argument);
  EXPECT_THROW(Machine("m", "", {MachineChannel{"link", nullptr}}),
               std::invalid_argument);
}

TEST(MachineRegistry, ListsPresetsAndRejectsUnknownNames) {
  const auto listings = list_machines();
  ASSERT_GE(listings.size(), 6u);
  for (const char* name :
       {"paper", "cascade", "pcie-gpu", "duplex-pcie", "summit-node",
        "nvlink"}) {
    EXPECT_TRUE(MachineRegistry::global().contains(name)) << name;
  }
  try {
    (void)machine_from_name("nonexistent-machine");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error lists the available machines, like the solver registry.
    EXPECT_NE(std::string(e.what()).find("paper"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("nvlink"), std::string::npos);
  }
}

TEST(MachineRegistry, RejectsDuplicateAndEmptyKeys) {
  EXPECT_THROW(MachineRegistry::global().add(
                   "paper", MachineChannels{"link"}, "dup",
                   [] { return machine_from_name("paper"); }),
               std::logic_error);
  EXPECT_THROW(MachineRegistry::global().add(
                   "", MachineChannels{"link"}, "empty",
                   [] { return machine_from_name("paper"); }),
               std::logic_error);
  // The declaration itself is mandatory: an empty channel layout is a
  // registration error, not a default.
  EXPECT_THROW(MachineRegistry::global().add(
                   "model-test-undeclared", MachineChannels{}, "no channels",
                   [] { return machine_from_name("paper"); }),
               std::logic_error);
}

TEST(MachineRegistry, DeclaredChannelsMismatchIsCaughtAtMake) {
  static const RegisterMachine reg{
      "model-test-misdeclared", MachineChannels{"H2D+D2H"},
      "declares duplex, builds a single link", [] {
        return Machine("model-test-misdeclared", "test",
                       {affine_channel("link", 1.0e-6, 2.0e9)});
      }};
  // Listing shows the declaration without building anything...
  bool listed = false;
  for (const MachineListing& row : list_machines()) {
    if (row.name == "model-test-misdeclared") {
      listed = true;
      EXPECT_EQ(row.channels, "H2D+D2H");
    }
  }
  EXPECT_TRUE(listed);
  // ...and the first construction trips the declared-vs-built audit.
  EXPECT_THROW((void)machine_from_name("model-test-misdeclared"),
               std::logic_error);
}

TEST(MachineRegistry, CustomMachinesPlugIn) {
  static const RegisterMachine reg{
      "model-test-custom", MachineChannels{"link"}, "a custom test machine",
      [] {
        return Machine("model-test-custom", "test",
                       {affine_channel("link", 1.0e-6, 2.0e9)});
      }};
  const Machine m = machine_from_name("model-test-custom");
  EXPECT_DOUBLE_EQ(m.transfer_time(0, 2.0e9), 1.0e-6 + 1.0);
}

TEST(Bind, RecostsByteAnnotatedTasksAndKeepsTimeOnlyOnes) {
  std::vector<Task> tasks;
  tasks.push_back(Task{.id = 0, .comm = 1.0, .comp = 2.0, .mem = 8.0,
                       .comm_bytes = 1.0e6, .name = "annotated"});
  tasks.push_back(Task{.id = 0, .comm = 3.0, .comp = 1.0, .mem = 4.0,
                       .name = "time-only"});
  tasks.push_back(Task{.id = 0, .comm = kUnboundTime, .comp = 0.5, .mem = 2.0,
                       .comm_bytes = 2.0e6, .name = "time-less"});
  const Instance inst(std::move(tasks));
  EXPECT_FALSE(inst.fully_bound());
  EXPECT_FALSE(inst.fully_byte_annotated());

  const Machine machine = machine_from_name("paper");
  const Instance bound = bind(inst, machine);
  EXPECT_TRUE(bound.fully_bound());
  EXPECT_EQ(bound[0].comm, machine.transfer_time(0, 1.0e6));
  EXPECT_DOUBLE_EQ(bound[1].comm, 3.0);  // no bytes: measured time kept
  EXPECT_EQ(bound[2].comm, machine.transfer_time(0, 2.0e6));
  // Everything else is untouched.
  EXPECT_DOUBLE_EQ(bound[0].comp, 2.0);
  EXPECT_DOUBLE_EQ(bound[2].mem, 2.0);
  EXPECT_DOUBLE_EQ(bound[0].comm_bytes, 1.0e6);
}

TEST(Bind, RejectsUncostableAndOffMachineTasks) {
  // Time-less without bytes cannot even form an Instance.
  EXPECT_THROW(
      Instance({Task{.id = 0, .comm = kUnboundTime, .comp = 1.0, .mem = 1.0,
                     .name = "broken"}}),
      std::invalid_argument);
  // A duplex trace cannot bind to a single-link machine.
  std::vector<Task> tasks;
  tasks.push_back(Task{.id = 0, .comm = 1.0, .comp = 0.0, .mem = 1.0,
                       .channel = kChannelD2H, .comm_bytes = 10.0,
                       .name = "wb"});
  const Instance duplex(std::move(tasks));
  EXPECT_THROW((void)bind(duplex, machine_from_name("paper")),
               std::invalid_argument);
}

TEST(Bind, AnalysisEntryPointsRejectUnboundInstances) {
  // The comm-consuming analysis surfaces are defensive too: feeding them
  // the kUnboundTime sentinel must be a loud error, not garbage numbers.
  std::vector<Task> tasks;
  tasks.push_back(Task{.id = 0, .comm = kUnboundTime, .comp = 1.0, .mem = 2.0,
                       .comm_bytes = 100.0, .name = "t"});
  const Instance unbound(std::move(tasks));
  EXPECT_THROW((void)compute_bounds(unbound), std::invalid_argument);
  EXPECT_THROW((void)capacity_aware_bounds(unbound, 4.0),
               std::invalid_argument);
  EXPECT_THROW((void)recommend(unbound, 4.0), std::invalid_argument);
  // And stats() never classifies a time-less task as compute intensive.
  EXPECT_EQ(unbound.stats().n_compute_intensive, 0u);
}

TEST(Solve, BindsLazilyFromMachineNameAndDescriptor) {
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) {
    tasks.push_back(Task{.id = 0, .comm = kUnboundTime,
                         .comp = 0.001 * (i + 1), .mem = 1000.0 * (i + 1),
                         .comm_bytes = 1.0e6 * (i + 1),
                         .name = "t" + std::to_string(i)});
  }
  const Instance inst(std::move(tasks));

  SolveRequest request;
  request.instance = inst;
  request.capacity = 3.0 * inst.min_capacity();

  // Without a machine, a bytes-only instance is unsolvable — loudly.
  try {
    (void)solve(request, "OS");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("time-less"), std::string::npos);
  }

  request.machine = "paper";
  const SolveResult by_name = solve(request, "OS");

  // The MachineRef holds either alternative: an inline descriptor solves
  // identically to the name it was resolved from.
  SolveRequest by_desc_request = request;
  by_desc_request.machine = machine_from_name("paper");
  const SolveResult by_desc = solve(by_desc_request, "OS");
  EXPECT_EQ(by_name.makespan, by_desc.makespan);

  // Deprecated machine_model shim (one release): still honored, and still
  // ambiguous next to a set MachineRef.
  SolveRequest by_shim = request;
  by_shim.machine = std::nullopt;
  by_shim.machine_model = machine_from_name("paper");
  EXPECT_EQ(by_name.makespan, solve(by_shim, "OS").makespan);
  SolveRequest both = request;
  both.machine_model = machine_from_name("paper");
  EXPECT_THROW((void)solve(both, "OS"), std::invalid_argument);

  // Unknown names surface the registry's listing error.
  SolveRequest unknown = request;
  unknown.machine = "no-such-machine";
  EXPECT_THROW((void)solve(unknown, "OS"), std::invalid_argument);

  // A faster machine yields a strictly smaller makespan on this
  // comm-dominated instance.
  SolveRequest fast = request;
  fast.machine = "nvlink";
  EXPECT_LT(solve(fast, "OS").makespan, by_name.makespan);
}

TEST(Calibrate, RecoversParametersFromNoisySamples) {
  // Synthetic measurements of a known link with +-0.1% multiplicative
  // noise over a sweep where both regimes of the affine curve carry
  // signal (latency dominates the small sizes, bandwidth the large);
  // the fitted latency and bandwidth must land within 1% of the truth.
  const double true_latency = 5.0e-6;
  const double true_bandwidth = 8.0e9;
  Rng rng(20260729);
  std::vector<TransferSample> samples;
  for (int rep = 0; rep < 50; ++rep) {
    for (double bytes = 1024.0; bytes <= 1.0e6; bytes *= 2.0) {
      const double t =
          affine_transfer_time(true_latency, true_bandwidth, bytes);
      samples.push_back({bytes, t * rng.uniform(0.999, 1.001)});
    }
  }
  const CalibratedFit fit = calibrate(samples);
  EXPECT_NEAR(fit.bandwidth, true_bandwidth, 0.01 * true_bandwidth);
  EXPECT_NEAR(fit.latency, true_latency, 0.01 * true_latency);
  EXPECT_LT(fit.max_rel_error, 0.01);

  // Noise-free samples recover the parameters (near) exactly, and the
  // round-trip through measure_samples closes.
  const auto clean = measure_samples(fit.model(), std::vector<double>{
                                         1e3, 1e5, 1e7, 1e9});
  const CalibratedFit refit = calibrate(clean);
  EXPECT_NEAR(refit.latency, fit.latency, 1e-12);
  EXPECT_NEAR(refit.bandwidth, fit.bandwidth, 1e-3 * fit.bandwidth);
}

TEST(Calibrate, PiecewiseRecoversBothRegimes) {
  const PiecewiseTransferModel truth({
      {0.0, 1.0e-6, 2.0e9},
      {65536.0, 8.0e-6, 4.0e10},
  });
  Rng rng(7);
  std::vector<TransferSample> samples;
  for (int rep = 0; rep < 30; ++rep) {
    for (double bytes = 256.0; bytes <= 1.0e9; bytes *= 2.0) {
      samples.push_back(
          {bytes, truth.transfer_time(bytes) * rng.uniform(0.999, 1.001)});
    }
  }
  const PiecewiseTransferModel fit = calibrate_piecewise(samples, 65536.0);
  ASSERT_EQ(fit.segments().size(), 2u);
  EXPECT_NEAR(fit.segments()[0].bandwidth, 2.0e9, 0.01 * 2.0e9);
  EXPECT_NEAR(fit.segments()[1].bandwidth, 4.0e10, 0.01 * 4.0e10);
  EXPECT_NEAR(fit.segments()[0].latency, 1.0e-6, 0.01 * 1.0e-6);
  // In the large-message regime the intercept is a vanishing fraction of
  // every sample, so multiplicative noise bounds its recovery far looser
  // than the slope's.
  EXPECT_NEAR(fit.segments()[1].latency, 8.0e-6, 0.10 * 8.0e-6);
}

TEST(Calibrate, RejectsDegenerateInputs) {
  EXPECT_THROW((void)calibrate({}), std::invalid_argument);
  const std::vector<TransferSample> one{{100.0, 1.0}};
  EXPECT_THROW((void)calibrate(one), std::invalid_argument);
  const std::vector<TransferSample> same_size{{100.0, 1.0}, {100.0, 2.0}};
  EXPECT_THROW((void)calibrate(same_size), std::invalid_argument);
  const std::vector<TransferSample> shrinking{{100.0, 2.0}, {200.0, 1.0}};
  EXPECT_THROW((void)calibrate(shrinking), std::invalid_argument);
  const std::vector<TransferSample> negative{{100.0, -1.0}, {200.0, 1.0}};
  EXPECT_THROW((void)calibrate(negative), std::invalid_argument);
}

TEST(ChannelSpec, DelegatesToTheSharedAffineImplementation) {
  // Satellite guarantee: trace/machine.hpp, core/channels.hpp and the
  // model layer share one affine implementation — identical bit patterns.
  const ChannelSpec spec{"link", 1.2e9, 2.0e-6};
  const MachineModel model = MachineModel::cascade();
  const AffineTransferModel affine(2.0e-6, 1.2e9);
  for (double bytes : {0.0, 1.0, 42896.0, 176000.0, 1.8e9}) {
    const Time expected = affine_transfer_time(2.0e-6, 1.2e9, bytes);
    EXPECT_EQ(spec.transfer_time(bytes), expected);
    EXPECT_EQ(model.transfer_time(bytes), expected);
    EXPECT_EQ(affine.transfer_time(bytes), expected);
  }
}

}  // namespace
}  // namespace dts
