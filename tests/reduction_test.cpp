#include "reduction/three_partition.hpp"

#include <gtest/gtest.h>

#include "core/validate.hpp"
#include "exact/exhaustive.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

ThreePartitionInstance solvable_m2() {
  // {2,3,4,5,6,7}: b = 27/2... not integral. Use {1,2,6,2,3,4}: total 18,
  // m=2, b=9: triplets {1,2,6} and {2,3,4}.
  return ThreePartitionInstance{{1, 2, 6, 2, 3, 4}};
}

ThreePartitionInstance unsolvable_m2() {
  // Total 18, b=9, but the two 8s cannot be in the same triplet (8+8+v>9)
  // and each would need two partners summing to 1 — impossible with all
  // values >= 1 except a single 1 available... values: {8,8,1,... } pick
  // {8, 8, 1, 1, ... } hmm; simplest verified-unsolvable: {5,5,5,1,1,1}:
  // total 18, b 9; triplets must mix 5s and 1s: 5+5+1=11, 5+1+1=7 — none
  // hits 9.
  return ThreePartitionInstance{{5, 5, 5, 1, 1, 1}};
}

TEST(ThreePartition, WellFormedChecks) {
  EXPECT_TRUE(solvable_m2().well_formed());
  EXPECT_FALSE((ThreePartitionInstance{{1, 2}}).well_formed());
  EXPECT_FALSE((ThreePartitionInstance{{1, 2, -3}}).well_formed());
  EXPECT_FALSE((ThreePartitionInstance{{1, 1, 1, 1, 1, 2}}).well_formed())
      << "total 7 not divisible by m=2";
  EXPECT_FALSE((ThreePartitionInstance{{}}).well_formed());
}

TEST(ThreePartition, BruteForceSolvesSolvable) {
  const auto solution = solve_three_partition(solvable_m2());
  ASSERT_TRUE(solution.has_value());
  ASSERT_EQ(solution->size(), 2u);
  const auto& values = solvable_m2().values;
  for (const Triplet& t : *solution) {
    EXPECT_EQ(values[t[0]] + values[t[1]] + values[t[2]], 9);
  }
}

TEST(ThreePartition, BruteForceRejectsUnsolvable) {
  EXPECT_FALSE(solve_three_partition(unsolvable_m2()).has_value());
}

TEST(Reduction, Table1Construction) {
  const ThreePartitionInstance input = solvable_m2();
  const DtReduction red = reduce_to_dt(input);
  // m=2, x=6, b=9, b'=9+36=45, C=48, L=2*48=96.
  EXPECT_EQ(red.m, 2u);
  EXPECT_EQ(red.x, 6);
  EXPECT_EQ(red.b, 9);
  EXPECT_EQ(red.b_prime, 45);
  EXPECT_DOUBLE_EQ(red.capacity, 48.0);
  EXPECT_DOUBLE_EQ(red.target, 96.0);
  ASSERT_EQ(red.instance.size(), 9u);  // 4m+1

  // K_0: comm 0, comp 3.
  EXPECT_DOUBLE_EQ(red.instance[red.k_task(0)].comm, 0.0);
  EXPECT_DOUBLE_EQ(red.instance[red.k_task(0)].comp, 3.0);
  // K_1: comm b', comp 3. K_2 (= K_m): comm b', comp 0.
  EXPECT_DOUBLE_EQ(red.instance[red.k_task(1)].comm, 45.0);
  EXPECT_DOUBLE_EQ(red.instance[red.k_task(1)].comp, 3.0);
  EXPECT_DOUBLE_EQ(red.instance[red.k_task(2)].comp, 0.0);
  // A_i: comm 1, comp a_i + 2x.
  for (std::size_t i = 0; i < input.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(red.instance[red.a_task(i)].comm, 1.0);
    EXPECT_DOUBLE_EQ(red.instance[red.a_task(i)].comp,
                     static_cast<Time>(input.values[i] + 12));
  }
  // Total comm == total comp == L (the reduction's tightness property).
  const InstanceStats stats = red.instance.stats();
  EXPECT_DOUBLE_EQ(stats.sum_comm, red.target);
  EXPECT_DOUBLE_EQ(stats.sum_comp, red.target);
}

TEST(Reduction, PartitionYieldsTightSchedule) {
  const ThreePartitionInstance input = solvable_m2();
  const DtReduction red = reduce_to_dt(input);
  const auto solution = solve_three_partition(input);
  ASSERT_TRUE(solution.has_value());

  const Schedule s = schedule_from_partition(red, *solution);
  EXPECT_TRUE(testing::feasible(red.instance, s, red.capacity));
  EXPECT_DOUBLE_EQ(s.makespan(red.instance), red.target);
  // Zero idle anywhere: peak memory exactly C during the K windows.
  EXPECT_DOUBLE_EQ(peak_memory(red.instance, s), red.capacity);
}

TEST(Reduction, ScheduleRoundTripsToPartition) {
  const ThreePartitionInstance input = solvable_m2();
  const DtReduction red = reduce_to_dt(input);
  const auto solution = solve_three_partition(input);
  ASSERT_TRUE(solution.has_value());
  const Schedule s = schedule_from_partition(red, *solution);

  const auto recovered = partition_from_schedule(red, s);
  ASSERT_TRUE(recovered.has_value());
  ASSERT_EQ(recovered->size(), 2u);
  for (const Triplet& t : *recovered) {
    EXPECT_EQ(input.values[t[0]] + input.values[t[1]] + input.values[t[2]],
              input.b());
  }
}

TEST(Reduction, RejectsSlackSchedules) {
  // A feasible but non-tight schedule (makespan > L) is not a witness.
  const ThreePartitionInstance input = solvable_m2();
  const DtReduction red = reduce_to_dt(input);
  const Schedule slack = simulate_order(
      red.instance, red.instance.submission_order(), red.capacity);
  if (definitely_less(red.target, slack.makespan(red.instance))) {
    EXPECT_FALSE(partition_from_schedule(red, slack).has_value());
  }
}

TEST(Reduction, UnsolvableInstanceHasNoTightPermutationSchedule) {
  // For {5,5,5,1,1,1} no schedule of length L exists (Theorem 2). The
  // full statement covers arbitrary schedules; exhaustive search over the
  // 9!-permutation schedules (collapsed by symmetry) gives a strong
  // machine check: the best permutation schedule stays strictly above L.
  const ThreePartitionInstance input = unsolvable_m2();
  const DtReduction red = reduce_to_dt(input);
  const ExhaustiveResult best = best_common_order(red.instance, red.capacity);
  EXPECT_GT(best.makespan, red.target + 0.5);
}

TEST(Reduction, SolvableInstanceReachableByExhaustiveSearch) {
  const ThreePartitionInstance input = solvable_m2();
  const DtReduction red = reduce_to_dt(input);
  const ExhaustiveResult best = best_common_order(red.instance, red.capacity);
  EXPECT_DOUBLE_EQ(best.makespan, red.target);
  // ... and the optimal permutation schedule decodes into a partition.
  const auto recovered = partition_from_schedule(red, best.schedule);
  EXPECT_TRUE(recovered.has_value());
}

TEST(Reduction, MalformedInputThrows) {
  EXPECT_THROW((void)reduce_to_dt(ThreePartitionInstance{{1, 2}}),
               std::invalid_argument);
}

TEST(Reduction, WrongTripletCountThrows) {
  const DtReduction red = reduce_to_dt(solvable_m2());
  EXPECT_THROW((void)schedule_from_partition(red, {}), std::invalid_argument);
}

}  // namespace
}  // namespace dts
