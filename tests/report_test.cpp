#include <gtest/gtest.h>

#include <sstream>

#include "core/simulate.hpp"
#include "report/csv.hpp"
#include "report/gantt.hpp"
#include "report/stats.hpp"
#include "report/table.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(Quantile, KnownValues) {
  const std::vector<double> v{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.25), 1.75);  // R type-7
}

TEST(Quantile, SingleElement) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(v, 0.3), 7.0);
}

TEST(Quantile, EmptyThrows) {
  const std::vector<double> v;
  EXPECT_THROW((void)quantile_sorted(v, 0.5), std::invalid_argument);
}

TEST(Boxplot, BasicSummary) {
  const BoxplotSummary s = summarize({5, 1, 3, 2, 4});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_TRUE(s.outliers.empty());
  EXPECT_DOUBLE_EQ(s.whisker_low, 1.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 5.0);
}

TEST(Boxplot, DetectsOutliers) {
  std::vector<double> values(99, 1.0);
  values.push_back(100.0);
  const BoxplotSummary s = summarize(values);
  ASSERT_EQ(s.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(s.outliers.front(), 100.0);
  EXPECT_DOUBLE_EQ(s.whisker_high, 1.0);
}

TEST(Boxplot, EmptySample) {
  const BoxplotSummary s = summarize({});
  EXPECT_EQ(s.n, 0u);
}

TEST(Boxplot, StddevOfConstantIsZero) {
  const BoxplotSummary s = summarize({2, 2, 2, 2});
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(TextTable, AsciiAlignment) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22"});
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TextTable, MarkdownShape) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  const std::string md = t.to_markdown();
  EXPECT_NE(md.find("| a | b |"), std::string::npos);
  EXPECT_NE(md.find("|---|---|"), std::string::npos);
  EXPECT_NE(md.find("| 1 | 2 |"), std::string::npos);
}

TEST(TextTable, RowArityEnforced) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, NeedsColumns) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Format, FixedAndUnits) {
  EXPECT_EQ(format_fixed(1.23456, 2), "1.23");
  EXPECT_EQ(format_si_bytes(176000.0), "176KB");
  EXPECT_EQ(format_si_bytes(1.8e9), "1.80GB");
  EXPECT_EQ(format_seconds(0.0), "0s");
  EXPECT_EQ(format_seconds(1.5e-5), "15.0us");
  EXPECT_EQ(format_seconds(0.25), "250.00ms");
  EXPECT_EQ(format_seconds(2.0), "2.000s");
}

TEST(Csv, EscapingRules) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WriterEmitsRows) {
  std::ostringstream out;
  CsvWriter w(out);
  w.row({"h1", "h2"});
  w.row({"a,b", "2"});
  EXPECT_EQ(out.str(), "h1,h2\n\"a,b\",2\n");
}

TEST(Gantt, RendersLanesAndLegend) {
  const Instance inst = testing::table3_instance();
  const std::vector<TaskId> order{1, 2, 0, 3};
  const Schedule s = simulate_order(inst, order, kInfiniteMem);
  const std::string g = render_gantt(inst, s);
  EXPECT_NE(g.find("comm |"), std::string::npos);
  EXPECT_NE(g.find("comp |"), std::string::npos);
  EXPECT_NE(g.find("tasks:"), std::string::npos);
}

TEST(Gantt, NoOverlapMarkers) {
  // A feasible schedule must never paint two tasks on the same cell.
  const Instance inst = testing::table4_instance();
  const Schedule s = simulate_order(inst, inst.submission_order(), 6.0);
  const std::string g = render_gantt(inst, s);
  EXPECT_EQ(g.find('#'), std::string::npos);
}

TEST(Gantt, EmptySchedule) {
  const Instance inst;
  const Schedule s(0);
  EXPECT_EQ(render_gantt(inst, s), "(empty schedule)\n");
}

}  // namespace
}  // namespace dts
