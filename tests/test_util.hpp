#pragma once

/// Shared fixtures for the dts test suite: the paper's example instances
/// (Tables 2-5) and seeded random instance generators for property tests.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/validate.hpp"
#include "support/rng.hpp"

namespace dts::testing {

/// Table 2 (Proposition 1): optimal schedules need different orders on the
/// two resources when the capacity is 10.
inline Instance table2_instance() {
  return Instance::from_comm_comp({
      {0, 5},  // A
      {4, 3},  // B
      {1, 6},  // C
      {3, 7},  // D
      {6, 0.5},  // E
      {7, 0.5},  // F
  });
}
inline constexpr Mem kTable2Capacity = 10.0;

/// Table 3 (static-order examples, Fig. 4), capacity 6.
inline Instance table3_instance() {
  return Instance::from_comm_comp({
      {3, 2},  // A
      {1, 3},  // B
      {4, 4},  // C
      {2, 1},  // D
  });
}
inline constexpr Mem kTable3Capacity = 6.0;

/// Table 4 (dynamic examples, Fig. 5), capacity 6.
inline Instance table4_instance() {
  return Instance::from_comm_comp({
      {3, 2},  // A
      {1, 6},  // B
      {4, 6},  // C
      {5, 1},  // D
  });
}
inline constexpr Mem kTable4Capacity = 6.0;

/// Table 5 (corrections examples, Fig. 6), capacity 9.
inline Instance table5_instance() {
  return Instance::from_comm_comp({
      {4, 1},  // A
      {2, 6},  // B
      {8, 8},  // C
      {5, 4},  // D
      {3, 2},  // E
  });
}
inline constexpr Mem kTable5Capacity = 9.0;

/// Fig. 6 feeds the corrections heuristics the base order B C D A E.
inline std::vector<TaskId> table5_paper_omim_order() { return {1, 2, 3, 0, 4}; }

/// Random instance with durations in (0, 10] and memory equal to the
/// communication time (the paper's convention). Occasionally emits
/// zero-communication or zero-computation tasks to cover the edge cases
/// the paper's own examples contain.
inline Instance random_instance(Rng& rng, std::size_t n) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Time comm = rng.uniform(0.0, 10.0);
    Time comp = rng.uniform(0.0, 10.0);
    if (rng.chance(0.08)) comm = 0.0;
    if (rng.chance(0.08)) comp = 0.0;
    if (rng.chance(0.25)) comm = std::floor(comm);  // exercise ties
    if (rng.chance(0.25)) comp = std::floor(comp);
    tasks.push_back(Task{.id = 0, .comm = comm, .comp = comp, .mem = comm,
                         .name = {}});
  }
  return Instance(std::move(tasks));
}

/// Random instance whose memory is decoupled from the communication time.
inline Instance random_instance_free_mem(Rng& rng, std::size_t n) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    tasks.push_back(Task{.id = 0,
                         .comm = rng.uniform(0.0, 10.0),
                         .comp = rng.uniform(0.0, 10.0),
                         .mem = rng.uniform(0.1, 10.0),
                         .name = {}});
  }
  return Instance(std::move(tasks));
}

/// Capacity between mc (tightest feasible) and a multiple of it.
inline Mem random_capacity(Rng& rng, const Instance& inst, double max_factor = 3.0) {
  const Mem mc = inst.min_capacity();
  return mc <= 0.0 ? 1.0 : mc * rng.uniform(1.0, max_factor);
}

/// Gtest-friendly feasibility assertion.
inline ::testing::AssertionResult feasible(const Instance& inst,
                                           const Schedule& sched,
                                           Mem capacity) {
  const ValidationReport report = validate_schedule(inst, sched, capacity);
  if (report.ok()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << report.summary();
}

}  // namespace dts::testing
