#include "trace/transforms.hpp"

#include <gtest/gtest.h>

#include "core/johnson.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(Transforms, ScaleTimes) {
  const Instance inst = testing::table3_instance();
  const Instance scaled = scale_times(inst, 0.5, 2.0);
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(scaled[i].comm, inst[i].comm * 0.5);
    EXPECT_DOUBLE_EQ(scaled[i].comp, inst[i].comp * 2.0);
    EXPECT_DOUBLE_EQ(scaled[i].mem, inst[i].mem) << "memory untouched";
  }
}

TEST(Transforms, ScaleTimesRejectsBadFactors) {
  const Instance inst = testing::table3_instance();
  EXPECT_THROW((void)scale_times(inst, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)scale_times(inst, 1.0, -2.0), std::invalid_argument);
}

TEST(Transforms, FasterLinkLowersOmim) {
  Rng rng(801);
  for (int iter = 0; iter < 30; ++iter) {
    const Instance inst = testing::random_instance(rng, 10);
    const Instance faster = scale_times(inst, 0.5, 1.0);
    EXPECT_LE(omim(faster), omim(inst) + 1e-9);
  }
}

TEST(Transforms, ScaleMemory) {
  const Instance inst = testing::table3_instance();
  const Instance scaled = scale_memory(inst, 3.0);
  EXPECT_DOUBLE_EQ(scaled.min_capacity(), 3.0 * inst.min_capacity());
}

TEST(Transforms, MergePreservesTaskCountAndOrder) {
  const Instance a = testing::table3_instance();
  const Instance b = testing::table4_instance();
  const std::vector<Instance> traces{a, b};
  const Instance merged = merge_traces(traces);
  ASSERT_EQ(merged.size(), a.size() + b.size());
  EXPECT_DOUBLE_EQ(merged[0].comm, a[0].comm);
  EXPECT_DOUBLE_EQ(merged[static_cast<TaskId>(a.size())].comm, b[0].comm);
  // Ids renumbered to positions.
  for (TaskId i = 0; i < merged.size(); ++i) EXPECT_EQ(merged[i].id, i);
}

TEST(Transforms, FilterTasks) {
  const Instance inst = testing::table3_instance();
  const Instance compute_only = filter_tasks(
      inst, [](const Task& t) { return t.compute_intensive(); });
  EXPECT_EQ(compute_only.size(), 2u);  // B and C
  const Instance none = filter_tasks(inst, [](const Task&) { return false; });
  EXPECT_TRUE(none.empty());
}

TEST(Transforms, JitterStaysWithinBand) {
  const Instance inst = testing::table4_instance();
  Rng rng(802);
  const Instance jittered = jitter_times(inst, rng, 0.1);
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_GE(jittered[i].comm, inst[i].comm * 0.9 - 1e-12);
    EXPECT_LE(jittered[i].comm, inst[i].comm * 1.1 + 1e-12);
    EXPECT_GE(jittered[i].comp, inst[i].comp * 0.9 - 1e-12);
    EXPECT_LE(jittered[i].comp, inst[i].comp * 1.1 + 1e-12);
  }
  EXPECT_THROW((void)jitter_times(inst, rng, 1.0), std::invalid_argument);
}

TEST(Transforms, SplitBatches) {
  const Instance inst = testing::table5_instance();  // 5 tasks
  const std::vector<Instance> batches = split_batches(inst, 2);
  ASSERT_EQ(batches.size(), 3u);
  EXPECT_EQ(batches[0].size(), 2u);
  EXPECT_EQ(batches[1].size(), 2u);
  EXPECT_EQ(batches[2].size(), 1u);
  EXPECT_DOUBLE_EQ(batches[2][0].comm, inst[4].comm);
  EXPECT_THROW((void)split_batches(inst, 0), std::invalid_argument);
}

TEST(Transforms, StripCommTimesYieldsMachineIndependentWorkloads) {
  std::vector<Task> tasks;
  tasks.push_back(Task{.id = 0, .comm = 1.0, .comp = 2.0, .mem = 3.0,
                       .comm_bytes = 4096.0, .name = "a"});
  tasks.push_back(Task{.id = 0, .comm = 0.5, .comp = 0.0, .mem = 1.0,
                       .comm_bytes = 100.0, .name = "b"});
  const Instance inst(std::move(tasks));
  const Instance stripped = strip_comm_times(inst);
  EXPECT_FALSE(stripped.fully_bound());
  for (const Task& t : stripped) {
    EXPECT_EQ(t.comm, kUnboundTime);
    EXPECT_TRUE(t.has_comm_bytes());
  }
  // Comp, mem and bytes survive.
  EXPECT_DOUBLE_EQ(stripped[0].comp, 2.0);
  EXPECT_DOUBLE_EQ(stripped[0].comm_bytes, 4096.0);

  // A task without bytes cannot be stripped: its time would be lost.
  const Instance legacy = Instance::from_comm_comp({{1, 2}});
  EXPECT_THROW((void)strip_comm_times(legacy), std::invalid_argument);
}

TEST(Transforms, ScaleAndJitterPreserveTimelessSentinels) {
  std::vector<Task> tasks;
  tasks.push_back(Task{.id = 0, .comm = kUnboundTime, .comp = 2.0, .mem = 3.0,
                       .comm_bytes = 4096.0, .name = "a"});
  const Instance inst(std::move(tasks));
  const Instance scaled = scale_times(inst, 0.5, 2.0);
  EXPECT_EQ(scaled[0].comm, kUnboundTime);
  EXPECT_DOUBLE_EQ(scaled[0].comp, 4.0);
  Rng rng(5);
  const Instance jittered = jitter_times(inst, rng, 0.1);
  EXPECT_EQ(jittered[0].comm, kUnboundTime);
}

TEST(Transforms, SplitThenMergeRoundTrips) {
  Rng rng(803);
  const Instance inst = testing::random_instance(rng, 17);
  const std::vector<Instance> batches = split_batches(inst, 5);
  const Instance merged = merge_traces(batches);
  ASSERT_EQ(merged.size(), inst.size());
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(merged[i].comm, inst[i].comm);
    EXPECT_DOUBLE_EQ(merged[i].comp, inst[i].comp);
    EXPECT_DOUBLE_EQ(merged[i].mem, inst[i].mem);
  }
}

}  // namespace
}  // namespace dts
