#include "core/registry.hpp"

#include <gtest/gtest.h>

#include <set>

#include "core/bounds.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(Registry, FourteenHeuristics) {
  EXPECT_EQ(all_heuristics().size(), 14u);
  EXPECT_EQ(all_heuristic_ids().size(), 14u);
}

TEST(Registry, NamesMatchThePaper) {
  const std::set<std::string_view> expected{
      "OS",   "OOSIM",  "IOCMS",  "DOCPS",  "IOCCS",  "DOCCS",  "GG",
      "BP",   "LCMR",   "SCMR",   "MAMR",   "OOLCMR", "OOSCMR", "OOMAMR"};
  std::set<std::string_view> actual;
  for (const auto& h : all_heuristics()) actual.insert(h.name);
  EXPECT_EQ(actual, expected);
}

TEST(Registry, NameRoundTrip) {
  for (const auto& h : all_heuristics()) {
    const auto id = heuristic_from_name(h.name);
    ASSERT_TRUE(id.has_value()) << h.name;
    EXPECT_EQ(*id, h.id);
    EXPECT_EQ(name_of(h.id), h.name);
  }
  EXPECT_FALSE(heuristic_from_name("NOPE").has_value());
  EXPECT_FALSE(heuristic_from_name("oosim").has_value()) << "case sensitive";
}

TEST(Registry, CategoriesPartitionTheRegistry) {
  std::size_t total = 0;
  for (HeuristicCategory cat :
       {HeuristicCategory::kBaseline, HeuristicCategory::kStatic,
        HeuristicCategory::kDynamic, HeuristicCategory::kCorrected}) {
    total += heuristics_in(cat).size();
  }
  EXPECT_EQ(total, all_heuristics().size());
  EXPECT_EQ(heuristics_in(HeuristicCategory::kBaseline).size(), 1u);
  EXPECT_EQ(heuristics_in(HeuristicCategory::kStatic).size(), 7u);
  EXPECT_EQ(heuristics_in(HeuristicCategory::kDynamic).size(), 3u);
  EXPECT_EQ(heuristics_in(HeuristicCategory::kCorrected).size(), 3u);
}

class AllHeuristicsTest : public ::testing::TestWithParam<HeuristicId> {};

TEST_P(AllHeuristicsTest, FeasibleWithinBoundsAcrossCapacities) {
  const HeuristicId id = GetParam();
  Rng rng(0xC0FFEE);
  for (int iter = 0; iter < 40; ++iter) {
    const Instance inst = testing::random_instance(rng, 14);
    const Bounds b = compute_bounds(inst);
    const Mem mc = inst.min_capacity();
    for (double factor : {1.0, 1.25, 1.5, 2.0}) {
      const Mem capacity = mc * factor;
      const Schedule s = run_heuristic(id, inst, capacity);
      ASSERT_TRUE(testing::feasible(inst, s, capacity))
          << name_of(id) << " capacity factor " << factor;
      const Time ms = s.makespan(inst);
      EXPECT_GE(ms + 1e-9, b.omim_lower) << name_of(id);
      EXPECT_LE(ms, b.sequential_upper + 1e-9) << name_of(id);
    }
  }
}

TEST_P(AllHeuristicsTest, PermutationSchedulesAlways) {
  // Every registry heuristic keeps a common order on both resources
  // (paper §4: "In all of our strategies (except linear programming based
  // strategy), communication and computations take place in the same
  // order").
  const HeuristicId id = GetParam();
  Rng rng(0xBEEF);
  const Instance inst = testing::random_instance(rng, 12);
  const Schedule s = run_heuristic(id, inst, inst.min_capacity() * 1.3);
  EXPECT_TRUE(s.is_permutation_schedule()) << name_of(id);
}

TEST_P(AllHeuristicsTest, DeterministicAcrossRuns) {
  const HeuristicId id = GetParam();
  Rng rng(0xD00D);
  const Instance inst = testing::random_instance(rng, 10);
  const Mem capacity = inst.min_capacity() * 1.4;
  const Schedule a = run_heuristic(id, inst, capacity);
  const Schedule b = run_heuristic(id, inst, capacity);
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].comm_start, b[i].comm_start);
    EXPECT_DOUBLE_EQ(a[i].comp_start, b[i].comp_start);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, AllHeuristicsTest, ::testing::ValuesIn(all_heuristic_ids()),
    [](const ::testing::TestParamInfo<HeuristicId>& param_info) {
      return std::string(name_of(param_info.param));
    });

TEST(Registry, HeuristicMakespanMatchesSchedule) {
  const Instance inst = testing::table3_instance();
  EXPECT_DOUBLE_EQ(
      heuristic_makespan(HeuristicId::kOOSIM, inst, testing::kTable3Capacity),
      15.0);
}

}  // namespace
}  // namespace dts
