#include "core/johnson.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/bounds.hpp"
#include "core/simulate.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(Johnson, OrderOnTable3) {
  // S1 = {B, C} by increasing comm; S2 = {A, D} by decreasing comp.
  const Instance inst = testing::table3_instance();
  EXPECT_EQ(johnson_order(inst), (std::vector<TaskId>{1, 2, 0, 3}));
}

TEST(Johnson, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(omim(Instance{}), 0.0);
  const Instance one = Instance::from_comm_comp({{3, 4}});
  EXPECT_EQ(johnson_order(one), (std::vector<TaskId>{0}));
  EXPECT_DOUBLE_EQ(omim(one), 7.0);
}

TEST(Johnson, StableTieBreakPreservesSubmission) {
  const Instance inst = Instance::from_comm_comp({{2, 5}, {2, 6}, {2, 4}});
  // All compute intensive with equal comm: submission order kept.
  EXPECT_EQ(johnson_order(inst), (std::vector<TaskId>{0, 1, 2}));
}

TEST(Johnson, OptimalVersusExhaustiveOnRandomInstances) {
  // Theorem 1: Johnson's order is optimal with infinite memory. Check
  // against brute force over all permutations for hundreds of small
  // random instances, including zero-duration edge cases.
  Rng rng(99);
  for (int iter = 0; iter < 300; ++iter) {
    const std::size_t n = 1 + rng.index(6);
    const Instance inst = testing::random_instance(rng, n);
    const Time johnson = omim(inst);

    std::vector<TaskId> order = inst.submission_order();
    std::sort(order.begin(), order.end());
    Time best = kInfiniteTime;
    do {
      best = std::min(best, makespan_of_order(inst, order, kInfiniteMem));
    } while (std::next_permutation(order.begin(), order.end()));

    EXPECT_NEAR(johnson, best, 1e-9)
        << "Johnson suboptimal on iteration " << iter;
  }
}

TEST(Johnson, SwapLemmaConditions) {
  const Task a{.id = 0, .comm = 2, .comp = 5, .mem = 2, .name = {}};
  const Task b{.id = 1, .comm = 3, .comp = 4, .mem = 3, .name = {}};
  EXPECT_TRUE(swap_cannot_improve(a, b));  // condition (i)
  const Task c{.id = 0, .comm = 5, .comp = 3, .mem = 5, .name = {}};
  const Task d{.id = 1, .comm = 4, .comp = 2, .mem = 4, .name = {}};
  EXPECT_TRUE(swap_cannot_improve(c, d));  // condition (ii)
  EXPECT_TRUE(swap_cannot_improve(a, d));  // condition (iii)
  EXPECT_FALSE(swap_cannot_improve(d, a)) << "comm-intensive before "
                                             "compute-intensive can improve";
}

TEST(Johnson, SwapLemmaNumerically) {
  // Lemma 1: when a condition holds, swapping two adjacent tasks never
  // reduces the makespan, for any resource-availability offsets t1, t2.
  Rng rng(7);
  for (int iter = 0; iter < 2000; ++iter) {
    const Task a{.id = 0, .comm = rng.uniform(0, 5), .comp = rng.uniform(0, 5),
                 .mem = 0, .name = {}};
    const Task b{.id = 1, .comm = rng.uniform(0, 5), .comp = rng.uniform(0, 5),
                 .mem = 0, .name = {}};
    if (!swap_cannot_improve(a, b)) continue;
    const Time t1 = rng.uniform(0, 3);
    const Time t2 = rng.uniform(0, 6);
    const auto completion = [&](const Task& x, const Task& y) {
      // x then y starting from link time t1 and processor time t2.
      const Time comp_x = std::max(t1 + x.comm, t2);
      const Time comp_y =
          std::max(comp_x + x.comp, t1 + x.comm + y.comm) + y.comp;
      return comp_y;
    };
    EXPECT_LE(completion(a, b), completion(b, a) + 1e-9);
  }
}

TEST(Bounds, OrderingOfBounds) {
  Rng rng(123);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = testing::random_instance(rng, 8);
    const Bounds b = compute_bounds(inst);
    EXPECT_LE(b.area_lower, b.omim_lower + 1e-9);
    EXPECT_LE(b.omim_lower, b.sequential_upper + 1e-9);
    EXPECT_DOUBLE_EQ(b.sequential_upper, b.sum_comm + b.sum_comp);
    EXPECT_GE(b.max_overlap_fraction(), -1e-12);
    EXPECT_LE(b.max_overlap_fraction(), 1.0);
  }
}

TEST(Bounds, OmimLowerBoundsConstrainedSchedules) {
  Rng rng(321);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = testing::random_instance(rng, 8);
    const Mem capacity = testing::random_capacity(rng, inst);
    const Time constrained =
        makespan_of_order(inst, johnson_order(inst), capacity);
    EXPECT_GE(constrained + 1e-9, omim(inst));
  }
}

}  // namespace
}  // namespace dts
