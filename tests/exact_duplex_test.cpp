/// Exact multi-channel solving: the per-channel order branch & bound
/// against (a) an independent unpruned reference enumeration, (b) the
/// exhaustive common-order optimum, (c) the window solver's pair mode on
/// duplex instances, and (d) the channel-aware lower bounds. This is the
/// parity layer the CI acceptance gate leans on: branch-bound must never
/// be beaten by exhaustive or any heuristic on a multi-channel instance,
/// and its pruning/deduplication must not change the optimum.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/bounds.hpp"
#include "core/registry.hpp"
#include "core/simulate.hpp"
#include "core/solver.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"
#include "exact/lower_bounds.hpp"
#include "exact/window_solver.hpp"
#include "heuristics/duplex_balance.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

/// Random instance across `channels` engines; memory decoupled from comm.
Instance random_duplex_instance(Rng& rng, std::size_t n,
                                std::size_t channels = 2) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.comm = rng.uniform(0.0, 10.0);
    t.comp = rng.uniform(0.0, 10.0);
    if (rng.chance(0.1)) t.comm = 0.0;
    if (rng.chance(0.1)) t.comp = 0.0;
    if (rng.chance(0.25)) t.comm = std::floor(t.comm);
    if (rng.chance(0.25)) t.comp = std::floor(t.comp);
    t.mem = rng.uniform(0.1, 10.0);
    t.channel = static_cast<ChannelId>(rng.index(channels));
    tasks.push_back(std::move(t));
  }
  return Instance(std::move(tasks));
}

/// Unpruned, undeduplicated reference: scans EVERY raw (global transfer
/// order, computation order) permutation pair through the co-simulation
/// with an infinite abort threshold. Independent of best_pair_order's
/// value collapsing, suffix-load prunes and lower-bound early exit.
Time reference_optimum(const Instance& inst, Mem capacity) {
  std::vector<TaskId> comm = inst.submission_order();
  Time best = kInfiniteTime;
  Schedule scratch(inst.size());
  do {
    std::vector<TaskId> comp = inst.submission_order();
    do {
      const auto ms = simulate_pair_order(inst, comm, comp, capacity, {},
                                          kInfiniteTime, scratch);
      if (ms) best = std::min(best, *ms);
    } while (std::next_permutation(comp.begin(), comp.end()));
  } while (std::next_permutation(comm.begin(), comm.end()));
  return best;
}

TEST(ExactDuplex, BranchBoundMatchesUnprunedReference) {
  Rng rng(71);
  for (int iter = 0; iter < 12; ++iter) {
    const Instance inst = random_duplex_instance(rng, 4);
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    SCOPED_TRACE("iter " + std::to_string(iter));
    const PairOrderResult res = best_pair_order(inst, capacity);
    EXPECT_NEAR(res.makespan, reference_optimum(inst, capacity), 1e-9);
    EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity));
  }
}

TEST(ExactDuplex, BranchBoundNeverWorseThanExhaustiveOrHeuristics) {
  Rng rng(72);
  for (int iter = 0; iter < 15; ++iter) {
    const std::size_t n = 3 + rng.index(3);  // 3..5 tasks
    const Instance inst = random_duplex_instance(rng, n);
    const Mem capacity = testing::random_capacity(rng, inst);
    SCOPED_TRACE("iter " + std::to_string(iter));
    const CapacityAwareBounds lb = capacity_aware_bounds(inst, capacity);
    const PairOrderResult pair = best_pair_order(inst, capacity);
    EXPECT_TRUE(testing::feasible(inst, pair.schedule, capacity));
    EXPECT_TRUE(approx_leq(lb.combined, pair.makespan));
    const ExhaustiveResult common = best_common_order(inst, capacity);
    EXPECT_LE(pair.makespan, common.makespan + 1e-9);
    for (const HeuristicInfo& h : all_heuristics()) {
      EXPECT_LE(pair.makespan,
                heuristic_makespan(h.id, inst, capacity) + 1e-9)
          << h.name;
    }
  }
}

TEST(ExactDuplex, SimulatorSchedulesValidateOnRandomOrderPairs) {
  // Whatever order pair the search explores, a completed co-simulation
  // must be a feasible schedule (per-channel transfer overlap, processor
  // overlap and the memory envelope all validate).
  Rng rng(73);
  for (int iter = 0; iter < 150; ++iter) {
    const std::size_t n = 2 + rng.index(6);  // 2..7 tasks
    const Instance inst = random_duplex_instance(rng, n, 1 + rng.index(3));
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    std::vector<TaskId> comm = inst.submission_order();
    std::vector<TaskId> comp = inst.submission_order();
    for (std::size_t i = n; i > 1; --i) {
      std::swap(comm[i - 1], comm[rng.index(i)]);
      std::swap(comp[i - 1], comp[rng.index(i)]);
    }
    Schedule out(inst.size());
    const auto ms = simulate_pair_order(inst, comm, comp, capacity, {},
                                        kInfiniteTime, out);
    if (!ms) continue;  // deadlocked pair: nothing to validate
    EXPECT_TRUE(testing::feasible(inst, out, capacity));
    EXPECT_NEAR(*ms, out.makespan(inst), 1e-9);
  }
}

TEST(ExactDuplex, CarriedMultiClockStateShiftsSchedule) {
  // A snapshot carrying distinct engine clocks: every transfer starts at
  // or after its own engine's clock and the snapshot instant.
  std::vector<Task> tasks;
  for (int i = 0; i < 3; ++i) {
    Task t;
    t.comm = 2.0 + i;
    t.comp = 1.0;
    t.mem = 1.0;
    t.channel = static_cast<ChannelId>(i % 2);
    tasks.push_back(std::move(t));
  }
  const Instance inst(std::move(tasks));
  ExecutionState::Snapshot snap;
  snap.comm_available = {10.0, 4.0};
  snap.comp_available = 6.0;
  snap.now = 4.0;
  PairOrderOptions options;
  options.initial_state = snap;
  const PairOrderResult res = best_pair_order(inst, kInfiniteMem, options);
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_GE(res.schedule[i].comm_start + 1e-9,
              snap.comm_available[inst[i].channel]);
    EXPECT_GE(res.schedule[i].comm_start + 1e-9, snap.now);
    EXPECT_GE(res.schedule[i].comp_start + 1e-9, snap.comp_available);
  }
  // The final state keeps one clock per engine and never runs backwards.
  ASSERT_EQ(res.final_state.comm_available.size(), 2u);
  EXPECT_GE(res.final_state.comm_available[0], 10.0);
  EXPECT_GE(res.final_state.comm_available[1], 4.0);
}

TEST(ExactDuplex, WindowPairCoveringWholeInstanceMatchesBranchBound) {
  Rng rng(74);
  for (int iter = 0; iter < 10; ++iter) {
    const Instance inst = random_duplex_instance(rng, 5);
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    SCOPED_TRACE("iter " + std::to_string(iter));
    const Schedule windowed = schedule_windowed(
        inst, capacity, {.window = 5, .mode = WindowMode::kPairOrder});
    const PairOrderResult exact = best_pair_order(inst, capacity);
    EXPECT_NEAR(windowed.makespan(inst), exact.makespan, 1e-9);
  }
}

TEST(ExactDuplex, WindowedDuplexFeasibleUpToNineTasks) {
  // The ISSUE's small-case gate: multi-channel instances up to 9 tasks
  // through both window modes (several windows, carried multi-clock
  // snapshots) stay feasible and respect the channel-aware bounds, and
  // the pair mode never trails the common mode on the single-window case.
  Rng rng(75);
  for (std::size_t n : {6u, 8u, 9u}) {
    for (int iter = 0; iter < 6; ++iter) {
      const Instance inst = random_duplex_instance(rng, n);
      const Mem capacity = testing::random_capacity(rng, inst);
      SCOPED_TRACE("n=" + std::to_string(n) + " iter " +
                   std::to_string(iter));
      const Bounds bounds = compute_bounds(inst);
      for (std::size_t k : {2u, 3u, 4u}) {
        for (WindowMode mode :
             {WindowMode::kCommonOrder, WindowMode::kPairOrder}) {
          const Schedule s =
              schedule_windowed(inst, capacity, {.window = k, .mode = mode});
          ASSERT_TRUE(testing::feasible(inst, s, capacity))
              << "k=" << k << (mode == WindowMode::kPairOrder ? "p" : "");
          EXPECT_TRUE(approx_leq(bounds.omim_lower, s.makespan(inst)));
        }
      }
    }
  }
}

TEST(ExactDuplex, ExhaustiveEqualsWindowCoveringNineDuplexTasks) {
  // exhaustive and window:9 (one window) share the common-order space on
  // duplex instances; the window solver must reproduce the optimum.
  Rng rng(76);
  const Instance inst = random_duplex_instance(rng, 9);
  const Mem capacity = testing::random_capacity(rng, inst);
  const ExhaustiveResult exact = best_common_order(inst, capacity);
  // window caps at 8; split 9 tasks as one 8-window + remainder is not
  // exact, so compare through best_common_order options instead: the
  // exhaustive result must validate and dominate every heuristic.
  EXPECT_TRUE(testing::feasible(inst, exact.schedule, capacity));
  for (const HeuristicInfo& h : all_heuristics()) {
    EXPECT_LE(exact.makespan, heuristic_makespan(h.id, inst, capacity) + 1e-9)
        << h.name;
  }
}

TEST(ExactDuplex, ProvedOptimalEarlyExitStopsTheScan) {
  // A duplex instance whose optimum touches the combined bound: passing
  // the bound must end the search early with proved_optimal set and the
  // same makespan.
  Rng rng(77);
  for (int iter = 0; iter < 20; ++iter) {
    const Instance inst = random_duplex_instance(rng, 4);
    const Mem capacity = testing::random_capacity(rng, inst, 3.0);
    const PairOrderResult plain = best_pair_order(inst, capacity);
    PairOrderOptions with_bound;
    with_bound.lower_bound = capacity_aware_bounds(inst, capacity).combined;
    const PairOrderResult bounded = best_pair_order(inst, capacity, with_bound);
    EXPECT_NEAR(bounded.makespan, plain.makespan, 1e-9);
    EXPECT_LE(bounded.pairs_simulated, plain.pairs_simulated);
    if (bounded.proved_optimal) {
      EXPECT_TRUE(approx_leq(bounded.makespan, with_bound.lower_bound));
    }
  }
}

// ------------------------------------------------- duplex-balance order

TEST(DuplexBalance, SingleChannelEqualsJohnsonOrder) {
  Rng rng(78);
  for (int iter = 0; iter < 30; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem capacity = testing::random_capacity(rng, inst);
    EXPECT_EQ(schedule_duplex_balance(inst, capacity).makespan(inst),
              heuristic_makespan(HeuristicId::kOOSIM, inst, capacity));
  }
}

TEST(DuplexBalance, OrderInterleavesChannelsByCommittedLoad) {
  // Two engines, identical per-task costs: the merge must alternate
  // engines instead of draining one first.
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) {
    Task t;
    t.comm = 2.0;
    t.comp = 1.0;
    t.mem = 1.0;
    t.channel = static_cast<ChannelId>(i < 3 ? 0 : 1);
    tasks.push_back(std::move(t));
  }
  const Instance inst(std::move(tasks));
  const std::vector<TaskId> order = duplex_balance_order(inst);
  ASSERT_EQ(order.size(), 6u);
  for (std::size_t k = 0; k + 1 < order.size(); k += 2) {
    EXPECT_NE(inst[order[k]].channel, inst[order[k + 1]].channel)
        << "position " << k;
  }
}

TEST(DuplexBalance, RegisteredSolverIsFeasibleOnDuplex) {
  Rng rng(79);
  for (int iter = 0; iter < 20; ++iter) {
    const Instance inst = random_duplex_instance(rng, 20);
    const Mem capacity = testing::random_capacity(rng, inst);
    const SolveResult res =
        solve({.instance = inst, .capacity = capacity}, "duplex-balance");
    EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity));
    EXPECT_EQ(res.winner, "duplex-balance");
    EXPECT_TRUE(approx_leq(compute_bounds(inst).omim_lower, res.makespan));
  }
}

}  // namespace
}  // namespace dts
