#include "core/validate.hpp"

#include <gtest/gtest.h>

#include "core/simulate.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

Schedule valid_schedule(const Instance& inst) {
  return simulate_order(inst, inst.submission_order(), kInfiniteMem);
}

TEST(Validate, AcceptsSimulatorOutput) {
  const Instance inst = testing::table3_instance();
  const Schedule s = valid_schedule(inst);
  EXPECT_TRUE(validate_schedule(inst, s, kInfiniteMem).ok());
}

TEST(Validate, DetectsUnscheduledTask) {
  const Instance inst = testing::table3_instance();
  Schedule s(inst.size());
  s.set(0, 0, 3);
  const ValidationReport r = validate_schedule(inst, s, kInfiniteMem);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, Violation::Kind::kUnscheduledTask);
}

TEST(Validate, DetectsSizeMismatch) {
  const Instance inst = testing::table3_instance();
  const Schedule s(2);
  EXPECT_FALSE(validate_schedule(inst, s, kInfiniteMem).ok());
}

TEST(Validate, DetectsCommOverlap) {
  const Instance inst = Instance::from_comm_comp({{4, 1}, {4, 1}});
  Schedule s(2);
  s.set(0, 0, 4);
  s.set(1, 2, 6);  // transfer starts while task 0 still owns the link
  const ValidationReport r = validate_schedule(inst, s, kInfiniteMem);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, Violation::Kind::kCommOverlap);
}

TEST(Validate, DetectsCompOverlap) {
  const Instance inst = Instance::from_comm_comp({{1, 5}, {1, 5}});
  Schedule s(2);
  s.set(0, 0, 1);
  s.set(1, 1, 3);  // computation starts while task 0 computes
  const ValidationReport r = validate_schedule(inst, s, kInfiniteMem);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, Violation::Kind::kCompOverlap);
}

TEST(Validate, DetectsComputeBeforeData) {
  const Instance inst = Instance::from_comm_comp({{4, 1}});
  Schedule s(1);
  s.set(0, 0, 3.5);  // data lands at 4
  const ValidationReport r = validate_schedule(inst, s, kInfiniteMem);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, Violation::Kind::kComputeBeforeData);
}

TEST(Validate, DetectsMemoryOverflow) {
  const Instance inst = Instance::from_comm_comp({{4, 4}, {3, 3}});
  Schedule s(2);
  s.set(0, 0, 4);  // holds 4 in [0, 8)
  s.set(1, 4, 8);  // holds 3 in [4, 11): peak 7
  EXPECT_TRUE(validate_schedule(inst, s, 7.0).ok());
  const ValidationReport r = validate_schedule(inst, s, 6.5);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.violations.front().kind, Violation::Kind::kMemoryExceeded);
}

TEST(Validate, HalfOpenIntervalsAtMemoryBoundary) {
  // Task 1 starts its transfer exactly when task 0's computation ends:
  // with capacity 4 this must be legal (Fig. 2's tight pattern).
  const Instance inst = Instance::from_comm_comp({{4, 3}, {4, 3}});
  Schedule s(2);
  s.set(0, 0, 4);   // memory [0, 7)
  s.set(1, 7, 11);  // memory [7, 14)
  EXPECT_TRUE(validate_schedule(inst, s, 4.0).ok());
}

TEST(Validate, ZeroLengthTasksDoNotTripExclusivity) {
  const Instance inst = Instance::from_comm_comp({{0, 5}, {4, 0.5}});
  Schedule s(2);
  s.set(0, 0, 0);
  s.set(1, 0, 5);
  EXPECT_TRUE(validate_schedule(inst, s, kInfiniteMem).ok());
}

TEST(PeakMemory, TracksEnvelope) {
  const Instance inst = Instance::from_comm_comp({{2, 6}, {2, 2}, {2, 2}});
  Schedule s(3);
  s.set(0, 0, 2);  // holds 2 in [0, 8)
  s.set(1, 2, 4);  // holds 2 in [2, 6)
  s.set(2, 4, 6);  // holds 2 in [4, 8)
  EXPECT_DOUBLE_EQ(peak_memory(inst, s), 6.0);
}

TEST(PeakMemory, ReleaseBeforeAcquireAtSameInstant) {
  const Instance inst = Instance::from_comm_comp({{4, 3}, {4, 3}});
  Schedule s(2);
  s.set(0, 0, 4);
  s.set(1, 7, 11);
  EXPECT_DOUBLE_EQ(peak_memory(inst, s), 4.0);
}

TEST(PeakMemory, EmptySchedule) {
  const Instance inst;
  const Schedule s(0);
  EXPECT_DOUBLE_EQ(peak_memory(inst, s), 0.0);
}

TEST(Validate, ReportSummaryMentionsViolations) {
  const Instance inst = Instance::from_comm_comp({{4, 1}});
  Schedule s(1);
  s.set(0, 0, 1);
  const ValidationReport r = validate_schedule(inst, s, kInfiniteMem);
  EXPECT_NE(r.summary().find("violation"), std::string::npos);
}

}  // namespace
}  // namespace dts
