#include "threestage/three_stage.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "support/rng.hpp"

namespace dts {
namespace {

StagedTask staged(Time in, Time comp, Time out, Mem in_mem, Mem out_mem) {
  return StagedTask{.id = 0, .in_comm = in, .comp = comp, .out_comm = out,
                    .in_mem = in_mem, .out_mem = out_mem, .name = {}};
}

ThreeStageInstance random_staged(Rng& rng, std::size_t n) {
  std::vector<StagedTask> tasks;
  for (std::size_t i = 0; i < n; ++i) {
    const Mem in_mem = rng.uniform(0.5, 5.0);
    const Mem out_mem = rng.uniform(0.1, 2.0);
    tasks.push_back(staged(rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0),
                           rng.uniform(0.0, 2.0), in_mem, out_mem));
  }
  return ThreeStageInstance(std::move(tasks));
}

Time brute_force(const ThreeStageInstance& inst, Mem capacity) {
  std::vector<TaskId> order = inst.submission_order();
  std::sort(order.begin(), order.end());
  Time best = kInfiniteTime;
  do {
    best = std::min(best, three_stage_makespan(inst, order, capacity));
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

TEST(ThreeStage, RejectsNegativeFields) {
  std::vector<StagedTask> bad{staged(-1, 1, 1, 1, 1)};
  EXPECT_THROW(ThreeStageInstance{std::move(bad)}, std::invalid_argument);
}

TEST(ThreeStage, MinCapacityIsPeakPerTask) {
  const ThreeStageInstance inst(
      {staged(1, 1, 1, 4, 2), staged(1, 1, 1, 3, 1)});
  EXPECT_DOUBLE_EQ(inst.min_capacity(), 6.0);
}

TEST(ThreeStage, SingleTaskTimeline) {
  const ThreeStageInstance inst({staged(2, 3, 1, 4, 2)});
  const auto order = inst.submission_order();
  const ThreeStageSchedule s = simulate_three_stage(inst, order, 6.0);
  EXPECT_DOUBLE_EQ(s[0].in_start, 0.0);
  EXPECT_DOUBLE_EQ(s[0].comp_start, 2.0);
  EXPECT_DOUBLE_EQ(s[0].out_start, 5.0);
  EXPECT_DOUBLE_EQ(s.makespan(inst), 6.0);
  EXPECT_TRUE(validate_three_stage(inst, s, 6.0).empty());
}

TEST(ThreeStage, PipelinesThreeResources) {
  // Two identical tasks: stages pipeline, so the second finishes one
  // stage-length after the first (all stage times 1, ample memory).
  const ThreeStageInstance inst(
      {staged(1, 1, 1, 1, 1), staged(1, 1, 1, 1, 1)});
  const auto order = inst.submission_order();
  const ThreeStageSchedule s = simulate_three_stage(inst, order, 100.0);
  EXPECT_DOUBLE_EQ(s.makespan(inst), 4.0);
}

TEST(ThreeStage, MemoryCapSerializes) {
  // Both buffers of each task total 6; capacity 6 admits one task at a
  // time: the second input waits for the first download to finish (its
  // out buffer persists until then).
  const ThreeStageInstance inst(
      {staged(1, 1, 1, 4, 2), staged(1, 1, 1, 4, 2)});
  const auto order = inst.submission_order();
  const ThreeStageSchedule s = simulate_three_stage(inst, order, 6.0);
  EXPECT_TRUE(validate_three_stage(inst, s, 6.0).empty());
  EXPECT_DOUBLE_EQ(s[1].in_start, 3.0);
  EXPECT_DOUBLE_EQ(s.makespan(inst), 6.0);
}

TEST(ThreeStage, InputBufferReleasedAtComputeEnd) {
  // Task 0: in_mem 4 released at compute end (t=2); out_mem 1 lingers.
  // Task 1 (total 5) fits from t=2 under capacity 6.
  const ThreeStageInstance inst(
      {staged(1, 1, 5, 4, 1), staged(1, 1, 1, 4, 1)});
  const auto order = inst.submission_order();
  const ThreeStageSchedule s = simulate_three_stage(inst, order, 6.0);
  EXPECT_TRUE(validate_three_stage(inst, s, 6.0).empty());
  EXPECT_DOUBLE_EQ(s[1].in_start, 2.0);
}

TEST(ThreeStage, ThrowsWhenTaskExceedsCapacity) {
  const ThreeStageInstance inst({staged(1, 1, 1, 5, 2)});
  const auto order = inst.submission_order();
  EXPECT_THROW((void)simulate_three_stage(inst, order, 6.0),
               std::invalid_argument);
}

TEST(ThreeStage, ValidatorCatchesViolations) {
  const ThreeStageInstance inst({staged(2, 2, 2, 1, 1)});
  ThreeStageSchedule s(1);
  s.set(0, StagedTimes{0.0, 1.0, 4.0});  // computes before input arrives
  EXPECT_FALSE(validate_three_stage(inst, s, 10.0).empty());
  s.set(0, StagedTimes{0.0, 2.0, 3.0});  // downloads before compute ends
  EXPECT_FALSE(validate_three_stage(inst, s, 10.0).empty());
  s.set(0, StagedTimes{0.0, 2.0, 4.0});
  EXPECT_TRUE(validate_three_stage(inst, s, 10.0).empty());
}

TEST(ThreeStage, SimulatorAlwaysFeasible) {
  Rng rng(901);
  for (int iter = 0; iter < 150; ++iter) {
    const ThreeStageInstance inst = random_staged(rng, 12);
    const Mem capacity = inst.min_capacity() * rng.uniform(1.0, 3.0);
    std::vector<TaskId> order = inst.submission_order();
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    const ThreeStageSchedule s = simulate_three_stage(inst, order, capacity);
    const std::string verdict = validate_three_stage(inst, s, capacity);
    EXPECT_TRUE(verdict.empty()) << verdict;
  }
}

TEST(ThreeStage, BoundsHoldForEveryOrder) {
  Rng rng(902);
  for (int iter = 0; iter < 80; ++iter) {
    const ThreeStageInstance inst = random_staged(rng, 6);
    const Mem capacity = inst.min_capacity() * rng.uniform(1.0, 2.0);
    const ThreeStageBounds b = three_stage_bounds(inst);
    EXPECT_LE(b.combined, brute_force(inst, capacity) + 1e-9);
  }
}

TEST(ThreeStage, Johnson3CompetitiveWhenMemoryIsAmple) {
  // The 3-machine Johnson surrogate is memory-oblivious, so judge it on
  // its home turf (no memory constraint). Under tight memory it can be
  // much worse — which is exactly what bench/ext_three_stage quantifies.
  Rng rng(903);
  double worst = 1.0;
  for (int iter = 0; iter < 60; ++iter) {
    const ThreeStageInstance inst = random_staged(rng, 6);
    const std::vector<TaskId> order = johnson3_order(inst);
    const Time johnson = three_stage_makespan(inst, order, kInfiniteMem);
    const Time best = brute_force(inst, kInfiniteMem);
    worst = std::max(worst, johnson / best);
  }
  // Deterministic seed; the observed worst case over these 60 instances
  // is ~1.17 — pin a small margin above as a regression bound.
  EXPECT_LT(worst, 1.25);
}

TEST(ThreeStage, OutputsOnlyEverDelay) {
  // Dropping the output stage (the paper's simplification) can only
  // shorten a schedule: for any fixed order, the 2-stage makespan lower-
  // bounds the 3-stage one.
  Rng rng(904);
  for (int iter = 0; iter < 60; ++iter) {
    const ThreeStageInstance with_out = random_staged(rng, 8);
    std::vector<StagedTask> stripped(with_out.begin(), with_out.end());
    for (StagedTask& t : stripped) {
      t.out_comm = 0.0;
      t.out_mem = 0.0;
    }
    const ThreeStageInstance without_out(std::move(stripped));
    const Mem capacity = with_out.min_capacity() * rng.uniform(1.0, 2.0);
    std::vector<TaskId> order = with_out.submission_order();
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    EXPECT_LE(three_stage_makespan(without_out, order, capacity),
              three_stage_makespan(with_out, order, capacity) + 1e-9);
  }
}

TEST(ThreeStage, EmptyInstance) {
  const ThreeStageInstance inst;
  const ThreeStageSchedule s =
      simulate_three_stage(inst, inst.submission_order(), 1.0);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_DOUBLE_EQ(three_stage_bounds(inst).combined, 0.0);
}

}  // namespace
}  // namespace dts
