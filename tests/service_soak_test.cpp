/// Concurrency soak for the solver service: many client threads hammer a
/// small pool with a duplicate-heavy mix of shapes (plus a cache-bypass
/// minority), and afterwards everything must reconcile exactly — no lost
/// or duplicate responses, every response ok, responses for the same
/// cache key bitwise identical, exactly one miss and one insert per
/// distinct key (the single-flight guarantee), and
/// hits + misses + coalesced == cached-path responses. Runs under TSan
/// via the `Service` CI filter.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/simulate.hpp"
#include "service/service.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(ServiceSoak, DuplicateHeavyConcurrentLoadReconcilesExactly) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 40;
  constexpr std::size_t kShapes = 6;
  constexpr std::uint64_t kAltSeed = 7;

  ServiceOptions options;
  options.workers = 2;  // small pool: plenty of in-flight overlap
  options.queue_capacity = kThreads * kPerThread;  // nothing may shed
  options.max_inflight = kThreads * kPerThread;
  SolverService service(options);

  // A duplicate-heavy shape pool; every thread cycles through it with a
  // different stride so identical requests overlap in flight.
  Rng rng(20260810);
  std::vector<Instance> shapes;
  std::vector<Mem> capacities;
  for (std::size_t s = 0; s < kShapes; ++s) {
    shapes.push_back(testing::random_instance(rng, 8 + 2 * s));
    capacities.push_back(1.5 * shapes.back().min_capacity());
  }

  struct Tagged {
    std::string key;  // "<shape>/<seed>" or "bypass/<shape>"
    ServiceResponse response;
  };
  std::vector<std::vector<Tagged>> per_thread(kThreads);

  std::vector<std::thread> clients;
  for (std::size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      per_thread[t].reserve(kPerThread);
      for (std::size_t k = 0; k < kPerThread; ++k) {
        const std::size_t s = (t * 7 + k) % kShapes;
        ServiceRequest request;
        request.id = std::to_string(t) + "-" + std::to_string(k);
        request.instance = shapes[s];
        request.capacity = capacities[s];
        Tagged tagged;
        if (k % 8 == 5) {
          request.no_cache = true;
          tagged.key = "bypass/" + std::to_string(s);
        } else {
          if (k % 2 == 1) request.seed = kAltSeed;
          tagged.key = std::to_string(s) + "/" +
                       std::to_string(k % 2 == 1 ? kAltSeed : 0);
        }
        tagged.response = service.handle(request);
        per_thread[t].push_back(std::move(tagged));
      }
    });
  }
  for (std::thread& th : clients) th.join();

  // No lost responses, none shed or refused, and per-response outcomes
  // tally to exactly what the counters claim.
  constexpr std::size_t kTotal = kThreads * kPerThread;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t coalesced = 0;
  std::uint64_t bypass = 0;
  std::map<std::string, std::vector<const ServiceResponse*>> by_key;
  std::size_t observed = 0;
  for (const std::vector<Tagged>& batch : per_thread) {
    ASSERT_EQ(batch.size(), kPerThread);
    for (const Tagged& tagged : batch) {
      ++observed;
      ASSERT_EQ(tagged.response.status, WireResponse::Status::kOk)
          << tagged.response.id << ": " << tagged.response.error;
      switch (tagged.response.cache) {
        case WireResponse::CacheOutcome::kHit: ++hits; break;
        case WireResponse::CacheOutcome::kMiss: ++misses; break;
        case WireResponse::CacheOutcome::kCoalesced: ++coalesced; break;
        case WireResponse::CacheOutcome::kBypass: ++bypass; break;
      }
      by_key[tagged.key].push_back(&tagged.response);
    }
  }
  EXPECT_EQ(observed, kTotal);

  const ServiceCounters c = service.counters();
  EXPECT_EQ(c.received, kTotal);
  EXPECT_EQ(c.ok, kTotal);
  EXPECT_EQ(c.shed + c.draining + c.errors, 0u);
  EXPECT_EQ(c.ok_hit, hits);
  EXPECT_EQ(c.ok_miss, misses);
  EXPECT_EQ(c.ok_coalesced, coalesced);
  EXPECT_EQ(c.ok_bypass, bypass);
  EXPECT_EQ(c.cache.hits, hits);
  EXPECT_EQ(c.cache.misses, misses);
  EXPECT_EQ(c.cache.coalesced, coalesced);

  // The reconciliation identity: every cached-path request is exactly one
  // of hit / miss / coalesced.
  EXPECT_EQ(hits + misses + coalesced, kTotal - bypass);

  // Single flight: one miss and one insert per distinct cache key, no
  // duplicate solves ever (bypass requests never insert).
  constexpr std::uint64_t kDistinctKeys = kShapes * 2;
  EXPECT_EQ(misses, kDistinctKeys);
  EXPECT_EQ(c.cache.inserts, kDistinctKeys);
  EXPECT_EQ(c.cache_size, kDistinctKeys);
  EXPECT_EQ(c.cache.evictions, 0u);

  // Within a key, every response is bitwise identical; across the seed
  // variants of a shape the solves were independent but deterministic.
  for (const auto& [key, responses] : by_key) {
    const ServiceResponse& first = *responses.front();
    for (const ServiceResponse* r : responses) {
      EXPECT_EQ(r->winner, first.winner) << key;
      EXPECT_EQ(r->makespan, first.makespan) << key;
      EXPECT_EQ(r->evaluations, first.evaluations) << key;
      EXPECT_EQ(r->order, first.order) << key;
      ASSERT_EQ(r->schedule.size(), first.schedule.size()) << key;
      for (std::size_t i = 0; i < r->schedule.size(); ++i) {
        EXPECT_EQ(r->schedule[i].comm_start, first.schedule[i].comm_start);
        EXPECT_EQ(r->schedule[i].comp_start, first.schedule[i].comp_start);
      }
    }
  }

  // One representative per shape: the served order replays to the served
  // schedule bit-for-bit and is feasible under the requested capacity.
  for (std::size_t s = 0; s < kShapes; ++s) {
    const std::string key = std::to_string(s) + "/0";
    ASSERT_FALSE(by_key[key].empty());
    const ServiceResponse& r = *by_key[key].front();
    const Schedule replay = simulate_order(shapes[s], r.order, capacities[s]);
    ASSERT_EQ(replay.times().size(), r.schedule.size());
    for (std::size_t i = 0; i < r.schedule.size(); ++i) {
      EXPECT_EQ(replay.times()[i].comm_start, r.schedule[i].comm_start);
      EXPECT_EQ(replay.times()[i].comp_start, r.schedule[i].comp_start);
    }
    EXPECT_TRUE(testing::feasible(shapes[s], replay, capacities[s]));
  }
}

}  // namespace
}  // namespace dts
