#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "trace/generators.hpp"
#include "trace/tensor_tasks.hpp"
#include "trace/trace_io.hpp"
#include "trace/workload_stats.hpp"

namespace dts {
namespace {

TEST(TileSpec, ElementsAndBytes) {
  EXPECT_EQ((TileSpec{{100, 100}}.elements()), 10000u);
  EXPECT_DOUBLE_EQ((TileSpec{{100, 100}}.bytes()), 80000.0);
  EXPECT_EQ((TileSpec{{}}.elements()), 0u);
  EXPECT_EQ((TileSpec{{4, 5, 6}}.elements()), 120u);
}

TEST(TensorTasks, TransposeIsCommunicationIntensive) {
  const MachineModel m = MachineModel::cascade();
  const Task t = make_transpose_task(m, TileSpec{{100, 100}}, "tr");
  EXPECT_FALSE(t.compute_intensive());
  EXPECT_DOUBLE_EQ(t.mem, 80000.0);
  EXPECT_GT(t.comm, 0.0);
  EXPECT_GT(t.comp, 0.0);
}

TEST(TensorTasks, LargeContractionIsComputeIntensive) {
  const MachineModel m = MachineModel::cascade();
  const Task t = make_contraction_task(m, 2000, 2000, 200, "ct");
  EXPECT_TRUE(t.compute_intensive());
  EXPECT_DOUBLE_EQ(t.mem, 8.0 * (2000.0 * 200 + 200 * 2000));
}

TEST(MachineModel, TransferIncludesLatency) {
  const MachineModel m = MachineModel::cascade();
  EXPECT_GT(m.transfer_time(0.0), 0.0);
  EXPECT_GT(m.transfer_time(1e6), m.transfer_time(1e3));
}

TEST(Generators, Deterministic) {
  TraceConfig config;
  config.seed = 77;
  const Instance a = generate_hf_trace(config);
  const Instance b = generate_hf_trace(config);
  ASSERT_EQ(a.size(), b.size());
  for (TaskId i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].comm, b[i].comm);
    EXPECT_DOUBLE_EQ(a[i].comp, b[i].comp);
    EXPECT_DOUBLE_EQ(a[i].mem, b[i].mem);
  }
}

TEST(Generators, TaskCountsInConfiguredRange) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    TraceConfig config;
    config.seed = seed;
    const Instance hf = generate_hf_trace(config);
    EXPECT_GE(hf.size(), 300u);
    EXPECT_LE(hf.size(), 800u);
    const Instance ccsd = generate_ccsd_trace(config);
    EXPECT_GE(ccsd.size(), 300u);
    EXPECT_LE(ccsd.size(), 800u);
  }
}

TEST(Generators, HfMinimumCapacityIs176KB) {
  // The paper's HF experiments use mc = 176 KB.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    TraceConfig config;
    config.seed = seed;
    EXPECT_DOUBLE_EQ(generate_hf_trace(config).min_capacity(), 176000.0);
  }
}

TEST(Generators, CcsdMinimumCapacityNear1Point8GB) {
  // The paper's CCSD experiments use mc = 1.8 GB.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    TraceConfig config;
    config.seed = seed;
    const Mem mc = generate_ccsd_trace(config).min_capacity();
    EXPECT_GE(mc, 0.97 * 1.8e9);
    EXPECT_LE(mc, 1.8e9);
  }
}

TEST(Generators, HfShapeMatchesFig8) {
  // HF is communication dominated: at most ~20-25% overlap is available
  // and the sum of computation is well below the sum of communication.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TraceConfig config;
    config.seed = seed;
    const WorkloadCharacteristics wc = characterize(generate_hf_trace(config));
    EXPECT_GT(wc.bounds.sum_comm, wc.bounds.sum_comp);
    const double ratio = wc.bounds.sum_comp / wc.bounds.sum_comm;
    EXPECT_GT(ratio, 0.10) << "seed " << seed;
    EXPECT_LT(ratio, 0.45) << "seed " << seed;
    EXPECT_LT(wc.overlap_potential(), 0.30) << "seed " << seed;
    EXPECT_NEAR(wc.comm_over_omim, 1.0, 0.05) << "OMIM ~ sum comm for HF";
  }
}

TEST(Generators, CcsdShapeMatchesFig8) {
  // CCSD is roughly balanced: substantial overlap is available.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    TraceConfig config;
    config.seed = seed;
    const WorkloadCharacteristics wc =
        characterize(generate_ccsd_trace(config));
    const double ratio = wc.bounds.sum_comp / wc.bounds.sum_comm;
    EXPECT_GT(ratio, 0.55) << "seed " << seed;
    EXPECT_LT(ratio, 1.8) << "seed " << seed;
    EXPECT_GT(wc.overlap_potential(), 0.30) << "seed " << seed;
  }
}

TEST(Generators, HfComputeIntensiveTasksHaveSmallComm) {
  // The structural property the paper uses to explain SCMR's strength on
  // HF: the compute-intensive tasks are the small-communication ones.
  TraceConfig config;
  config.seed = 3;
  const Instance inst = generate_hf_trace(config);
  double ci_comm = 0.0, other_comm = 0.0;
  std::size_t ci = 0, other = 0;
  for (const Task& t : inst) {
    if (t.compute_intensive()) {
      ci_comm += t.comm;
      ++ci;
    } else {
      other_comm += t.comm;
      ++other;
    }
  }
  ASSERT_GT(ci, 0u);
  ASSERT_GT(other, 0u);
  EXPECT_LT(ci_comm / static_cast<double>(ci),
            other_comm / static_cast<double>(other));
}

TEST(Generators, CcsdHasBothTaskTypesInQuantity) {
  TraceConfig config;
  config.seed = 4;
  const Instance inst = generate_ccsd_trace(config);
  const double frac = inst.stats().compute_intensive_fraction();
  EXPECT_GT(frac, 0.25);
  EXPECT_LT(frac, 0.75);
}

TEST(Generators, CcsdMoreHeterogeneousThanHf) {
  TraceConfig config;
  config.seed = 5;
  const auto cv = [](const Instance& inst) {
    double sum = 0.0, sq = 0.0;
    for (const Task& t : inst) sum += t.comm;
    const double mean = sum / static_cast<double>(inst.size());
    for (const Task& t : inst) sq += (t.comm - mean) * (t.comm - mean);
    return std::sqrt(sq / static_cast<double>(inst.size())) / mean;
  };
  EXPECT_GT(cv(generate_ccsd_trace(config)), 2.0 * cv(generate_hf_trace(config)));
}

TEST(Generators, FleetProducesDistinctTraces) {
  const auto traces =
      generate_process_traces(ChemistryKernel::kHartreeFock, 5, 1000);
  ASSERT_EQ(traces.size(), 5u);
  EXPECT_FALSE(traces[0].size() == traces[1].size() &&
               traces[1].size() == traces[2].size() &&
               traces[2].size() == traces[3].size() &&
               traces[3].size() == traces[4].size())
      << "five identical task counts would suggest a seeding bug";
}

TEST(TraceIo, RoundTrip) {
  TraceConfig config;
  config.seed = 9;
  config.min_tasks = 50;
  config.max_tasks = 60;
  const Instance original = generate_ccsd_trace(config);
  std::stringstream buffer;
  write_trace(buffer, original);
  // Generated traces carry byte annotations, so the writer picks v3.
  EXPECT_NE(buffer.str().find("# dts-trace v3"), std::string::npos);
  const Instance loaded = read_trace(buffer);
  ASSERT_EQ(loaded.size(), original.size());
  for (TaskId i = 0; i < original.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].comm, original[i].comm) << i;
    EXPECT_DOUBLE_EQ(loaded[i].comp, original[i].comp) << i;
    EXPECT_DOUBLE_EQ(loaded[i].mem, original[i].mem) << i;
    EXPECT_DOUBLE_EQ(loaded[i].comm_bytes, original[i].comm_bytes) << i;
    EXPECT_EQ(loaded[i].name, original[i].name) << i;
  }
}

TEST(TraceIo, WriterPicksTheLowestSufficientVersion) {
  // No bytes, one channel -> v1 (legacy readers keep working).
  const Instance v1 = Instance::from_comm_comp({{1, 2}, {3, 4}});
  std::stringstream v1_buffer;
  write_trace(v1_buffer, v1);
  EXPECT_NE(v1_buffer.str().find("# dts-trace v1\n"), std::string::npos);

  // Bytes on a single-channel instance -> v3.
  std::vector<Task> tasks;
  tasks.push_back(Task{.id = 0, .comm = 1.0, .comp = 2.0, .mem = 3.0,
                       .comm_bytes = 4096.0, .name = "a"});
  std::stringstream v3_buffer;
  write_trace(v3_buffer, Instance(std::move(tasks)));
  const std::string text = v3_buffer.str();
  EXPECT_NE(text.find("# dts-trace v3\n"), std::string::npos);
  EXPECT_NE(text.find("bytes=4096"), std::string::npos);
}

TEST(TraceIo, V3RoundTripWithBytesChannelsAndTimelessTasks) {
  std::vector<Task> tasks;
  tasks.push_back(Task{.id = 0, .comm = 1.5, .comp = 2.0, .mem = 3.0,
                       .channel = kChannelH2D, .comm_bytes = 176000.0,
                       .name = "in"});
  tasks.push_back(Task{.id = 0, .comm = kUnboundTime, .comp = 0.0, .mem = 1.0,
                       .channel = kChannelD2H, .comm_bytes = 70400.0,
                       .name = "out"});
  tasks.push_back(Task{.id = 0, .comm = 0.25, .comp = 0.5, .mem = 2.0,
                       .channel = kChannelH2D, .name = "legacy"});
  const Instance inst(std::move(tasks));
  std::stringstream buffer;
  write_trace(buffer, inst);
  EXPECT_NE(buffer.str().find("# dts-trace v3"), std::string::npos);
  EXPECT_NE(buffer.str().find(" ? "), std::string::npos);  // time-less comm
  const Instance back = read_trace(buffer);
  ASSERT_EQ(back.size(), inst.size());
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(back[i].comm, inst[i].comm) << i;  // incl. the sentinel
    EXPECT_DOUBLE_EQ(back[i].comp, inst[i].comp) << i;
    EXPECT_DOUBLE_EQ(back[i].mem, inst[i].mem) << i;
    EXPECT_EQ(back[i].channel, inst[i].channel) << i;
    EXPECT_DOUBLE_EQ(back[i].comm_bytes, inst[i].comm_bytes) << i;
  }
  EXPECT_FALSE(back.fully_bound());
  EXPECT_FALSE(back.fully_byte_annotated());
}

TEST(TraceIo, V3AcceptsBytesWithoutChannelColumn) {
  std::stringstream buffer(
      "# dts-trace v3\n"
      "task a 1 2 3 bytes=4096\n"
      "task b ? 1 2 bytes=100\n");
  const Instance inst = read_trace(buffer);
  ASSERT_EQ(inst.size(), 2u);
  EXPECT_DOUBLE_EQ(inst[0].comm_bytes, 4096.0);
  EXPECT_EQ(inst[0].channel, 0u);
  EXPECT_EQ(inst[1].comm, kUnboundTime);
  EXPECT_TRUE(inst.fully_byte_annotated());
}

TEST(TraceIo, RejectsMissingHeader) {
  std::stringstream buffer("task a 1 2 3\n");
  EXPECT_THROW((void)read_trace(buffer), TraceIoError);
}

TEST(TraceIo, RejectsUnknownRecord) {
  std::stringstream buffer("# dts-trace v1\njob a 1 2 3\n");
  try {
    (void)read_trace(buffer);
    FAIL() << "expected TraceIoError";
  } catch (const TraceIoError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(TraceIo, RejectsShortRecord) {
  std::stringstream buffer("# dts-trace v1\ntask a 1 2\n");
  EXPECT_THROW((void)read_trace(buffer), TraceIoError);
}

TEST(TraceIo, FifthFieldIsTheChannelInV2Only) {
  std::stringstream buffer("# dts-trace v2\ntask a 1 2 3 1\n");
  const Instance inst = read_trace(buffer);
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_EQ(inst[0].channel, 1u);
  EXPECT_EQ(inst.num_channels(), 2u);

  // A stray extra numeric column in a v1 trace must not silently become
  // a copy-engine assignment.
  std::stringstream v1("# dts-trace v1\ntask a 1 2 3 1\n");
  EXPECT_THROW((void)read_trace(v1), TraceIoError);
}

TEST(TraceIo, RejectsTrailingFields) {
  std::stringstream buffer("# dts-trace v2\ntask a 1 2 3 0 9\n");
  EXPECT_THROW((void)read_trace(buffer), TraceIoError);
}

TEST(TraceIo, RejectsOutOfRangeChannel) {
  for (const char* channel : {"4096", "4294967296", "-1", "1x", "0.5"}) {
    std::stringstream buffer(std::string("# dts-trace v2\ntask a 1 2 3 ") +
                             channel + "\n");
    EXPECT_THROW((void)read_trace(buffer), TraceIoError) << channel;
  }
}

TEST(TraceIo, MultiChannelRoundTrip) {
  std::vector<Task> tasks;
  tasks.push_back(Task{.id = 0, .comm = 1.5, .comp = 2.0, .mem = 3.0,
                       .channel = kChannelH2D, .name = "in"});
  tasks.push_back(Task{.id = 0, .comm = 0.5, .comp = 0.0, .mem = 1.0,
                       .channel = kChannelD2H, .name = "out"});
  const Instance inst(std::move(tasks));
  std::stringstream buffer;
  write_trace(buffer, inst);
  EXPECT_NE(buffer.str().find("# dts-trace v2"), std::string::npos);
  const Instance back = read_trace(buffer);
  ASSERT_EQ(back.size(), inst.size());
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(back[i].channel, inst[i].channel);
    EXPECT_DOUBLE_EQ(back[i].comm, inst[i].comm);
    EXPECT_DOUBLE_EQ(back[i].mem, inst[i].mem);
  }
}

TEST(TraceIo, AcceptsExplicitPlusSignsLikeTheLegacyParser) {
  // Externally-written v1 traces with "+1.5" fields loaded under the old
  // stream-extraction parser and must keep loading.
  std::stringstream buffer("# dts-trace v1\ntask a +1.5 +2 +3\n");
  const Instance inst = read_trace(buffer);
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_DOUBLE_EQ(inst[0].comm, 1.5);
  EXPECT_DOUBLE_EQ(inst[0].comp, 2.0);
  EXPECT_DOUBLE_EQ(inst[0].mem, 3.0);
  // But a bare or doubled sign stays malformed.
  std::stringstream bare("# dts-trace v1\ntask a + 2 3\n");
  EXPECT_THROW((void)read_trace(bare), TraceIoError);
  std::stringstream doubled("# dts-trace v1\ntask a ++1 2 3\n");
  EXPECT_THROW((void)read_trace(doubled), TraceIoError);
}

TEST(TraceIo, RejectsNegativeDurations) {
  std::stringstream buffer("# dts-trace v1\ntask a -1 2 3\n");
  EXPECT_THROW((void)read_trace(buffer), TraceIoError);
}

TEST(TraceIo, RejectsEmptyInput) {
  std::stringstream buffer("");
  EXPECT_THROW((void)read_trace(buffer), TraceIoError);
}

TEST(TraceIo, SkipsCommentsAndBlankLines) {
  std::stringstream buffer(
      "# dts-trace v1\n# comment\n\ntask a 1 2 3\n\n# end\n");
  const Instance inst = read_trace(buffer);
  ASSERT_EQ(inst.size(), 1u);
  EXPECT_EQ(inst[0].name, "a");
}

TEST(WorkloadStats, RatiosConsistent) {
  TraceConfig config;
  config.seed = 6;
  config.min_tasks = 40;
  config.max_tasks = 50;
  const Instance inst = generate_hf_trace(config);
  const WorkloadCharacteristics wc = characterize(inst);
  EXPECT_NEAR(wc.total_over_omim, wc.comm_over_omim + wc.comp_over_omim, 1e-9);
  EXPECT_GE(wc.max_over_omim, wc.comm_over_omim - 1e-12);
  EXPECT_LE(wc.max_over_omim, 1.0 + 1e-9)
      << "max(sum comm, sum comp) lower-bounds OMIM";
}

TEST(WorkloadStats, CharacterizeAllMatchesIndividual) {
  const auto traces =
      generate_process_traces(ChemistryKernel::kCoupledClusterSD, 3, 50);
  const auto all = characterize_all(traces);
  ASSERT_EQ(all.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(all[i].comm_over_omim,
                     characterize(traces[i]).comm_over_omim);
  }
}

}  // namespace
}  // namespace dts
