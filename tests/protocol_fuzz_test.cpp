/// Fuzz-style negative tests for the `dts serve` wire protocol (in the
/// style of tests/trace_fuzz_test.cpp): truncated frames, oversized
/// payloads and header floods, interleaved garbage, CRLF endings and
/// random byte soup. Every malformed frame must raise a clean
/// ProtocolError with the reader resynced to the next `end` (one bad
/// request costs one error response, never a desynced connection), and a
/// live serve_stream session must answer every malformed frame with a
/// well-formed error response — no crash, no hang, no silent misparse.
/// The suite name matches the `Service` CI filter so it also runs under
/// TSan alongside the service tests (ASan/UBSan run the whole suite).

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <sstream>
#include <string>

#include "service/protocol.hpp"
#include "service/serve.hpp"
#include "service/service.hpp"
#include "support/rng.hpp"

namespace dts {
namespace {

ProtocolError request_failure(const std::string& text,
                              const ProtocolLimits& limits = {}) {
  std::istringstream in(text);
  try {
    (void)read_request(in, limits);
  } catch (const ProtocolError& e) {
    return e;
  }
  ADD_FAILURE() << "expected ProtocolError for:\n" << text;
  return ProtocolError("did not throw");
}

/// The resync contract: after a malformed frame throws, the same stream
/// must yield the next frame intact.
void expect_error_then_ping(const std::string& bad_frame) {
  std::istringstream in(bad_frame + "dts1 ping after\nend\n");
  EXPECT_THROW((void)read_request(in), ProtocolError) << bad_frame;
  std::optional<WireRequest> next;
  ASSERT_NO_THROW(next = read_request(in)) << bad_frame;
  ASSERT_TRUE(next.has_value()) << bad_frame;
  EXPECT_EQ(next->verb, WireRequest::Verb::kPing) << bad_frame;
  EXPECT_EQ(next->id, "after") << bad_frame;
}

TEST(ServiceProtocolFuzz, TruncatedFramesThrowCleanly) {
  for (const char* text :
       {"dts1 solve a\n",                        // EOF before any header
        "dts1 solve a",                          // EOF mid-line
        "dts1 solve a\ncapacity 1\n",            // EOF before `end`
        "dts1 solve a\ntrace 50\nshort",         // EOF inside the payload
        "dts1 solve a\ncapacity 1\ntrace 5\nabc" /* payload short */}) {
    (void)request_failure(text);
  }
}

TEST(ServiceProtocolFuzz, BadFrameHeadersThrowAndResync) {
  for (const char* header :
       {"garbage here now", "dts2 solve a", "dts1 bogus a", "dts1 solve",
        "dts1 solve a extra", "dts1  solve a", " dts1 solve a",
        "dts1 solve a "}) {
    expect_error_then_ping(std::string(header) + "\nend\n");
  }
}

TEST(ServiceProtocolFuzz, MalformedSolveHeadersThrowAndResync) {
  // Each bad header inside an otherwise plausible solve frame; the tiny
  // one-byte payload keeps the protocol layer honest (it never parses
  // trace text, only counts bytes).
  for (const char* header :
       {"solver", "capacity abc", "capacity inf", "capacity nan",
        "capacity 1e400", "capacity 1 2", "capacity-factor two", "seed -1",
        "seed 1.5", "batch 0x10", "no-cache yes", "frobnicate 1",
        "trace -1", "trace abc"}) {
    expect_error_then_ping("dts1 solve a\n" + std::string(header) +
                           "\ntrace 1\nX\nend\n");
  }
}

TEST(ServiceProtocolFuzz, SolveFrameStructuralErrors) {
  // No trace payload at all.
  expect_error_then_ping("dts1 solve a\ncapacity 1\nend\n");
  // Neither capacity form, and both at once.
  expect_error_then_ping("dts1 solve a\ntrace 1\nX\nend\n");
  expect_error_then_ping(
      "dts1 solve a\ncapacity 1\ncapacity-factor 1.5\ntrace 1\nX\nend\n");
  // Duplicate payload.
  expect_error_then_ping(
      "dts1 solve a\ncapacity 1\ntrace 1\nX\ntrace 1\nY\nend\n");
}

TEST(ServiceProtocolFuzz, HeadersOnHeaderlessVerbsThrowAndResync) {
  expect_error_then_ping("dts1 ping p\ncapacity 1\nend\n");
  expect_error_then_ping("dts1 stats s\nsolver auto\nend\n");
  expect_error_then_ping("dts1 quit q\ntrace 1\nX\nend\n");
}

TEST(ServiceProtocolFuzz, OversizedInputsAreBoundedErrors) {
  ProtocolLimits tight;
  tight.max_line_bytes = 32;
  tight.max_header_lines = 4;
  tight.max_trace_bytes = 100;

  // A header line over the byte bound drains to its newline and throws —
  // and the reader still resyncs for the next frame.
  {
    const std::string long_line(200, 'a');
    std::istringstream in("dts1 solve a\n" + long_line +
                          "\nend\ndts1 ping after\nend\n");
    EXPECT_THROW((void)read_request(in, tight), ProtocolError);
    std::optional<WireRequest> next;
    ASSERT_NO_THROW(next = read_request(in, tight));
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->verb, WireRequest::Verb::kPing);
  }

  // Header flood past max_header_lines.
  {
    std::string frame = "dts1 solve a\n";
    for (int i = 0; i < 8; ++i) frame += "solver x\n";
    frame += "end\n";
    (void)request_failure(frame, tight);
  }

  // Declared trace size over the limit is refused before any buffering.
  (void)request_failure("dts1 solve a\ncapacity 1\ntrace 101\n", tight);
  // Absurd declared sizes under the default limits, including u64
  // overflow in the count itself.
  (void)request_failure(
      "dts1 solve a\ncapacity 1\ntrace 18446744073709551615\n");
  (void)request_failure(
      "dts1 solve a\ncapacity 1\ntrace 99999999999999999999999\n");
}

TEST(ServiceProtocolFuzz, CrlfAndBlankLinesAreTolerated) {
  // CRLF endings are stripped per line (shell here-docs and Windows
  // clients), and blank lines between frames are skipped.
  std::istringstream in("dts1 ping p\r\nend\r\n\n\ndts1 quit q\nend\n");
  std::optional<WireRequest> ping = read_request(in);
  ASSERT_TRUE(ping.has_value());
  EXPECT_EQ(ping->verb, WireRequest::Verb::kPing);
  std::optional<WireRequest> quit = read_request(in);
  ASSERT_TRUE(quit.has_value());
  EXPECT_EQ(quit->verb, WireRequest::Verb::kQuit);
  EXPECT_FALSE(read_request(in).has_value());  // clean EOF
}

TEST(ServiceProtocolFuzz, TruncatedResponsesThrowCleanly) {
  for (const char* text :
       {"dts1 response a ok\n",                      // EOF before `end`
        "dts1 response a ok\nschedule 3\n1 2\n",     // EOF inside block
        "dts1 response a ok\nschedule 3\n1 2\nend\n",  // block cut short
        "dts1 response a ok\norder 4\n1 2\n",        // EOF inside order
        "dts1 response a ok\norder 2\n1 2 3\nend\n",   // order overfull
        "dts1 response a maybe\nend\n",              // unknown status
        "dts1 response a\nend\n"}) {
    std::istringstream in(text);
    EXPECT_THROW((void)read_response(in), ProtocolError) << text;
  }
}

TEST(ServiceProtocolFuzz, LargeResponsesRoundTripWithinLineLimits) {
  // ~20k tasks would bust the reader's 64 KB line limit if the order were
  // a single line; the chunked order block must round-trip regardless of
  // instance size (a solve well within max_trace_bytes must never yield
  // an unreadable ok response).
  WireResponse big;
  big.status = WireResponse::Status::kOk;
  big.id = "big";
  big.winner = "local-search";
  big.makespan = 123.0625;
  big.evaluations = 7;
  constexpr std::uint32_t kTasks = 20000;
  for (std::uint32_t i = 0; i < kTasks; ++i) {
    big.order.push_back(kTasks - 1 - i);
    big.schedule.emplace_back(0.5 * i, 0.5 * i + 0.25);
  }
  std::ostringstream wire;
  write_response(wire, big);

  const ProtocolLimits limits;
  std::istringstream lines(wire.str());
  std::string line;
  while (std::getline(lines, line)) {
    EXPECT_LE(line.size(), limits.max_line_bytes);
  }

  std::istringstream in(wire.str());
  std::optional<WireResponse> read;
  ASSERT_NO_THROW(read = read_response(in, limits));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->id, big.id);
  EXPECT_EQ(read->winner, big.winner);
  EXPECT_EQ(read->makespan, big.makespan);  // bitwise via %.17g
  EXPECT_EQ(read->order, big.order);
  EXPECT_EQ(read->schedule, big.schedule);
}

TEST(ServiceProtocolFuzz, OversizedErrorMessagesAreTruncatedNotUnreadable) {
  // Error messages may echo a (bounded) hostile input line; the writer
  // must cap them so the client reader never chokes on its own server.
  WireResponse error;
  error.status = WireResponse::Status::kError;
  error.id = "e";
  error.error = std::string(2 * ProtocolLimits{}.max_line_bytes, 'x');
  std::ostringstream wire;
  write_response(wire, error);

  std::istringstream in(wire.str());
  std::optional<WireResponse> read;
  ASSERT_NO_THROW(read = read_response(in));
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->status, WireResponse::Status::kError);
  EXPECT_FALSE(read->error.empty());
  EXPECT_LT(read->error.size(), 2048u);  // truncated, not echoed whole
}

TEST(ServiceProtocolFuzz, LiveSessionAnswersGarbageWithErrorResponses) {
  ServiceOptions options;
  options.workers = 1;
  SolverService service(options);

  // Interleave well-formed frames with garbage on one stream: every
  // garbage frame costs exactly one error response and nothing else.
  std::ostringstream session;
  session << "dts1 ping p\nend\n"
          << "total garbage frame\nwith more lines\nend\n"
          << "dts1 solve s\ncapacity abc\ntrace 1\nX\nend\n"
          << "dts1 stats t\nend\n"
          << "dts1 quit q\nend\n";
  std::istringstream in(session.str());
  std::ostringstream out;
  const ServeStats stats = serve_stream(service, in, out);
  EXPECT_EQ(stats.frames, 3u);  // ping, stats, quit
  EXPECT_EQ(stats.protocol_errors, 2u);
  EXPECT_TRUE(stats.saw_quit);

  std::istringstream replies(out.str());
  const char* expected[] = {"ok", "error", "error", "ok", "ok"};
  for (const char* status : expected) {
    std::optional<WireResponse> response;
    ASSERT_NO_THROW(response = read_response(replies));
    ASSERT_TRUE(response.has_value());
    EXPECT_EQ(to_string(response->status), status);
    if (response->status == WireResponse::Status::kError) {
      EXPECT_FALSE(response->error.empty());
    }
  }
  EXPECT_FALSE(read_response(replies).has_value());  // nothing extra
}

TEST(ServiceProtocolFuzz, RandomByteSoupNeverCrashesTheReader) {
  Rng rng(20260808);
  for (int round = 0; round < 300; ++round) {
    std::string text;
    const std::size_t len = rng.index(500);
    for (std::size_t i = 0; i < len; ++i) {
      // Protocol-ish tokens and separators: enough structure to reach
      // every parser path, enough noise to break all of them.
      const char alphabet[] = "dts1 solverespncaitymchnbq0123456789.e+-\n\r ";
      text += alphabet[rng.index(sizeof(alphabet) - 1)];
    }
    std::istringstream in(text);
    // Each call either consumes at least one line or hits EOF, so this
    // terminates; the only allowed outcomes are a frame, an error, EOF.
    for (;;) {
      try {
        if (!read_request(in).has_value()) break;
      } catch (const ProtocolError&) {
      }
    }
  }
}

TEST(ServiceProtocolFuzz, RandomByteSoupSessionsAlwaysAnswerWellFormed) {
  ServiceOptions options;
  options.workers = 1;
  SolverService service(options);

  Rng rng(20260809);
  for (int round = 0; round < 60; ++round) {
    std::string text;
    const std::size_t len = rng.index(400);
    for (std::size_t i = 0; i < len; ++i) {
      const char alphabet[] = "dts1 solverespncaitymchnbq0123456789.e+-\n ";
      text += alphabet[rng.index(sizeof(alphabet) - 1)];
    }
    text += "\ndts1 quit q\nend\n";  // bounded session
    std::istringstream in(text);
    std::ostringstream out;
    (void)serve_stream(service, in, out);
    // Whatever went in, what came out must parse as response frames.
    std::istringstream replies(out.str());
    for (;;) {
      std::optional<WireResponse> response;
      ASSERT_NO_THROW(response = read_response(replies)) << text;
      if (!response.has_value()) break;
    }
  }
}

}  // namespace
}  // namespace dts
