#include <gtest/gtest.h>

#include "core/auto_scheduler.hpp"
#include "core/johnson.hpp"
#include "core/recommend.hpp"
#include "core/validate.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(AutoScheduler, PicksTheBestCandidate) {
  Rng rng(81);
  for (int iter = 0; iter < 30; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem capacity = testing::random_capacity(rng, inst);
    const AutoScheduleResult res = auto_schedule(inst, capacity);
    ASSERT_EQ(res.outcomes.size(), all_heuristics().size());
    for (const HeuristicOutcome& o : res.outcomes) {
      EXPECT_LE(res.makespan, o.makespan + 1e-9)
          << name_of(res.best) << " vs " << name_of(o.id);
    }
    EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity));
    EXPECT_GE(res.ratio_to_optimal(), 1.0 - 1e-9);
  }
}

TEST(AutoScheduler, RestrictedCandidateSet) {
  const Instance inst = testing::table3_instance();
  const std::vector<HeuristicId> only{HeuristicId::kDOCPS};
  const AutoScheduleResult res =
      auto_schedule(inst, testing::kTable3Capacity, only);
  EXPECT_EQ(res.best, HeuristicId::kDOCPS);
  EXPECT_DOUBLE_EQ(res.makespan, 14.0);  // Fig. 4 value
}

TEST(AutoScheduler, TieGoesToEarlierCandidate) {
  // With unconstrained memory, OOSIM and the corrections variants all
  // produce the Johnson makespan; the first listed candidate must win.
  const Instance inst = testing::table3_instance();
  const std::vector<HeuristicId> candidates{
      HeuristicId::kOOSIM, HeuristicId::kOOLCMR, HeuristicId::kOOSCMR};
  const AutoScheduleResult res = auto_schedule(inst, kInfiniteMem, candidates);
  EXPECT_EQ(res.best, HeuristicId::kOOSIM);
}

TEST(AutoScheduler, EmptyInstance) {
  const AutoScheduleResult res = auto_schedule(Instance{}, 1.0);
  EXPECT_DOUBLE_EQ(res.makespan, 0.0);
  EXPECT_DOUBLE_EQ(res.ratio_to_optimal(), 1.0);
}

TEST(Recommend, UnconstrainedCapacityFavorsJohnson) {
  const Instance inst = testing::table3_instance();
  const Mem generous = peak_memory(inst, johnson_schedule(inst));
  const Recommendation rec = recommend(inst, generous);
  EXPECT_EQ(rec.regime, CapacityRegime::kUnconstrained);
  EXPECT_EQ(rec.primary, HeuristicId::kOOSIM);
}

TEST(Recommend, RegimeClassification) {
  const Instance inst = testing::table3_instance();  // mc = 4
  // Johnson schedule (B C A D, no cap): C, A and D all hold memory in
  // [8, 9), so the unconstrained peak is 4 + 3 + 2 = 9.
  EXPECT_DOUBLE_EQ(peak_memory(inst, johnson_schedule(inst)), 9.0);
  EXPECT_EQ(classify_capacity(inst, 9.0), CapacityRegime::kUnconstrained);
  EXPECT_EQ(classify_capacity(inst, 6.5), CapacityRegime::kModerate);
  EXPECT_EQ(classify_capacity(inst, 4.5), CapacityRegime::kLimited);
}

TEST(Recommend, LimitedCapacitySmallCommComputeTasksFavorScmr) {
  // HF's shape: compute-intensive tasks have small comm times.
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back(Task{.id = 0, .comm = 8, .comp = 1, .mem = 8, .name = {}});
  }
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Task{.id = 0, .comm = 1, .comp = 4, .mem = 1, .name = {}});
  }
  const Instance inst{std::move(tasks)};
  const Recommendation rec = recommend(inst, inst.min_capacity() * 1.1);
  EXPECT_EQ(rec.regime, CapacityRegime::kLimited);
  EXPECT_EQ(rec.primary, HeuristicId::kSCMR);
}

TEST(Recommend, LimitedCapacityLargeCommComputeTasksFavorLcmr) {
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back(Task{.id = 0, .comm = 1, .comp = 0.1, .mem = 1, .name = {}});
  }
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Task{.id = 0, .comm = 8, .comp = 10, .mem = 8, .name = {}});
  }
  const Instance inst{std::move(tasks)};
  const Recommendation rec = recommend(inst, inst.min_capacity() * 1.1);
  EXPECT_EQ(rec.regime, CapacityRegime::kLimited);
  EXPECT_EQ(rec.primary, HeuristicId::kLCMR);
}

TEST(Recommend, MixedWorkloadsFavorAccelerationVariants) {
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) {
    tasks.push_back(Task{.id = 0, .comm = 5, .comp = 1, .mem = 5, .name = {}});
    tasks.push_back(Task{.id = 0, .comm = 2, .comp = 6, .mem = 2, .name = {}});
  }
  const Instance inst{std::move(tasks)};
  const Recommendation limited = recommend(inst, inst.min_capacity() * 1.05);
  EXPECT_EQ(limited.primary, HeuristicId::kMAMR);
  // Moderate capacity: corrected variant.
  const Mem peak = peak_memory(inst, johnson_schedule(inst));
  if (inst.min_capacity() * 1.8 < peak) {
    const Recommendation moderate = recommend(inst, inst.min_capacity() * 1.8);
    EXPECT_EQ(moderate.regime, CapacityRegime::kModerate);
    EXPECT_EQ(moderate.primary, HeuristicId::kOOMAMR);
  }
}

TEST(Recommend, RationaleIsNonEmpty) {
  const Instance inst = testing::table4_instance();
  for (double f : {1.0, 1.6, 10.0}) {
    EXPECT_FALSE(recommend(inst, inst.min_capacity() * f).rationale.empty());
  }
}

TEST(Recommend, RegimeToString) {
  EXPECT_EQ(to_string(CapacityRegime::kUnconstrained), "unconstrained");
  EXPECT_EQ(to_string(CapacityRegime::kModerate), "moderate");
  EXPECT_EQ(to_string(CapacityRegime::kLimited), "limited");
}

}  // namespace
}  // namespace dts
