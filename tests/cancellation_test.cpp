/// Deadline/cancellation propagation into the anytime solvers: window:K
/// and local-search must stop promptly under a short time limit or an
/// already-fired CancellationToken, and still return a complete feasible
/// best-so-far schedule.

#include <gtest/gtest.h>

#include <chrono>

#include "core/registry.hpp"
#include "core/solver.hpp"
#include "core/validate.hpp"
#include "exact/window_solver.hpp"
#include "heuristics/local_search.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

Instance wide_instance(std::size_t n) {
  Rng rng(99);
  return testing::random_instance(rng, n);
}

double run_seconds(const auto& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TEST(Cancellation, PreCancelledWindowSolverFallsBackToSubmissionOrder) {
  const Instance inst = wide_instance(18);
  const Mem capacity = 1.5 * inst.min_capacity();
  SolveOptions options;
  const CancellationToken token = CancellationToken::source();
  token.cancel();
  options.cancel = token;
  for (const char* solver : {"window:4", "window:3:pair"}) {
    const SolveResult res =
        solve({.instance = inst, .capacity = capacity}, solver, options);
    EXPECT_TRUE(res.cancelled) << solver;
    EXPECT_TRUE(res.schedule.complete()) << solver;
    EXPECT_TRUE(validate_schedule(inst, res.schedule, capacity).ok())
        << solver;
    // No window was optimized: the whole schedule is the OS fallback.
    EXPECT_DOUBLE_EQ(
        res.makespan,
        run_heuristic(HeuristicId::kOS, inst, capacity).makespan(inst))
        << solver;
  }
}

TEST(Cancellation, PreCancelledLocalSearchSkipsEvenTheSeedPass) {
  const Instance inst = wide_instance(20);
  const Mem capacity = 1.5 * inst.min_capacity();
  SolveOptions options;
  const CancellationToken token = CancellationToken::source();
  token.cancel();
  options.cancel = token;
  const SolveResult res =
      solve({.instance = inst, .capacity = capacity}, "local-search", options);
  EXPECT_TRUE(res.cancelled);
  EXPECT_EQ(res.evaluations, 0u);  // no candidate was even simulated
  EXPECT_TRUE(validate_schedule(inst, res.schedule, capacity).ok());
  // The auto-scheduler seed pass is skipped too: the best-so-far is the
  // cheapest complete schedule, the submission order.
  EXPECT_DOUBLE_EQ(
      res.makespan,
      run_heuristic(HeuristicId::kOS, inst, capacity).makespan(inst));
}

TEST(Cancellation, ZeroTimeLimitStopsBothSolversImmediately) {
  const Instance inst = wide_instance(16);
  const Mem capacity = 1.25 * inst.min_capacity();
  SolveOptions options;
  options.time_limit_seconds = 0.0;
  for (const char* solver : {"window:4", "local-search"}) {
    const SolveResult res =
        solve({.instance = inst, .capacity = capacity}, solver, options);
    EXPECT_TRUE(res.cancelled) << solver;
    EXPECT_TRUE(validate_schedule(inst, res.schedule, capacity).ok())
        << solver;
  }
}

TEST(Cancellation, ShortDeadlineStopsLocalSearchPromptly) {
  // A large instance with an effectively unbounded iteration budget: only
  // the deadline can end the search. The generous wall-clock bound keeps
  // the test robust on loaded CI machines while still proving the limit
  // is honored (an unbounded run would take far longer).
  const Instance inst = wide_instance(160);
  const Mem capacity = 1.25 * inst.min_capacity();
  SolveOptions options;
  options.time_limit_seconds = 0.05;
  options.max_iterations = 100000000;
  options.max_no_improve = 100000000;
  SolveResult res;
  const double elapsed = run_seconds([&] {
    res = solve({.instance = inst, .capacity = capacity}, "local-search",
                options);
  });
  EXPECT_TRUE(res.cancelled);
  EXPECT_LT(elapsed, 5.0);
  EXPECT_TRUE(validate_schedule(inst, res.schedule, capacity).ok());
}

TEST(Cancellation, MidRunTokenKeepsTheWindowPrefixOptimized) {
  // Cancel after the first window boundary poll: the already-optimized
  // prefix is kept, the tail drains in submission order, and the result
  // stays feasible.
  const Instance inst = wide_instance(12);
  const Mem capacity = 1.5 * inst.min_capacity();
  int polls = 0;
  WindowOptions options;
  options.window = 3;
  options.should_stop = [&polls] { return ++polls > 1; };
  const WindowedResult res = solve_windowed(inst, capacity, options);
  EXPECT_TRUE(res.stopped);
  EXPECT_EQ(res.windows_optimized, 1u);
  EXPECT_TRUE(res.schedule.complete());
  EXPECT_TRUE(validate_schedule(inst, res.schedule, capacity).ok());
}

TEST(Cancellation, LocalSearchStopCallbackCountsAsStopped) {
  const Instance inst = wide_instance(24);
  const Mem capacity = 1.5 * inst.min_capacity();
  int budget = 50;
  LocalSearchOptions options;
  options.should_stop = [&budget] { return --budget < 0; };
  const LocalSearchResult res =
      schedule_local_search(inst, capacity, options);
  EXPECT_TRUE(res.stopped);
  EXPECT_LE(res.iterations, 50u);
  EXPECT_TRUE(validate_schedule(inst, res.schedule, capacity).ok());
  EXPECT_LE(res.makespan, res.initial_makespan + 1e-9);
}

}  // namespace
}  // namespace dts
