/// Tests for the self-contained MILP backend (src/milp/): the dense
/// two-phase simplex core on known tableaux, the branch-and-bound driver
/// against the paper's Table 2 optimum and the other exact solvers, the
/// grid (milp:T) invariance contract, the anytime/cancellation behavior,
/// and the wire surfacing of the optimality certificate. Suite names all
/// carry "Milp" so the CI thread/audit jobs can select them with -R.

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "core/solver.hpp"
#include "exact/branch_bound.hpp"
#include "exact/exhaustive.hpp"
#include "milp/milp_solver.hpp"
#include "milp/model.hpp"
#include "milp/simplex.hpp"
#include "service/protocol.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

using milp::LpProblem;
using milp::LpRow;
using milp::LpStatus;
using milp::RowType;
using milp::SimplexSolver;

LpRow row(std::vector<double> coeffs, RowType type, double rhs) {
  LpRow r;
  r.coeffs = std::move(coeffs);
  r.type = type;
  r.rhs = rhs;
  return r;
}

TEST(MilpSimplex, SolvesKnownTableau) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (the classic
  // Dantzig example; optimum at (2, 6) with objective 36). Minimize the
  // negated objective.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};
  lp.rows.push_back(row({1.0, 0.0}, RowType::kLe, 4.0));
  lp.rows.push_back(row({0.0, 2.0}, RowType::kLe, 12.0));
  lp.rows.push_back(row({3.0, 2.0}, RowType::kLe, 18.0));
  SimplexSolver solver;
  const auto sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -36.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-9);
}

TEST(MilpSimplex, HandlesGeAndEqRows) {
  // min x + y s.t. x + y >= 2, x - y == 1 -> (1.5, 0.5), objective 2.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {1.0, 1.0};
  lp.rows.push_back(row({1.0, 1.0}, RowType::kGe, 2.0));
  lp.rows.push_back(row({1.0, -1.0}, RowType::kEq, 1.0));
  SimplexSolver solver;
  const auto sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.5, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.5, 1e-9);
}

TEST(MilpSimplex, NormalizesNegativeRhs) {
  // min x s.t. -x <= -3 (i.e. x >= 3).
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.rows.push_back(row({-1.0}, RowType::kLe, -3.0));
  SimplexSolver solver;
  const auto sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
}

TEST(MilpSimplex, DetectsInfeasible) {
  // x <= 1 and x >= 2 cannot both hold.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {1.0};
  lp.rows.push_back(row({1.0}, RowType::kLe, 1.0));
  lp.rows.push_back(row({1.0}, RowType::kGe, 2.0));
  SimplexSolver solver;
  EXPECT_EQ(solver.solve(lp).status, LpStatus::kInfeasible);
}

TEST(MilpSimplex, DetectsUnbounded) {
  // min -x s.t. x >= 1: x can grow forever.
  LpProblem lp;
  lp.num_vars = 1;
  lp.objective = {-1.0};
  lp.rows.push_back(row({1.0}, RowType::kGe, 1.0));
  SimplexSolver solver;
  EXPECT_EQ(solver.solve(lp).status, LpStatus::kUnbounded);
}

TEST(MilpSimplex, SurvivesDegeneracy) {
  // Redundant constraints meeting at one vertex: Bland's rule must not
  // cycle. min -x - y s.t. x + y <= 1 (twice), x <= 1, y <= 1.
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-1.0, -1.0};
  lp.rows.push_back(row({1.0, 1.0}, RowType::kLe, 1.0));
  lp.rows.push_back(row({1.0, 1.0}, RowType::kLe, 1.0));
  lp.rows.push_back(row({1.0, 0.0}, RowType::kLe, 1.0));
  lp.rows.push_back(row({0.0, 1.0}, RowType::kLe, 1.0));
  SimplexSolver solver;
  const auto sol = solver.solve(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -1.0, 1e-9);
}

TEST(MilpSimplex, ReportsPivotLimit) {
  LpProblem lp;
  lp.num_vars = 2;
  lp.objective = {-3.0, -5.0};
  lp.rows.push_back(row({1.0, 0.0}, RowType::kLe, 4.0));
  lp.rows.push_back(row({0.0, 2.0}, RowType::kLe, 12.0));
  SimplexSolver solver;
  EXPECT_EQ(solver.solve(lp, 1).status, LpStatus::kPivotLimit);
}

TEST(MilpSolver, MatchesTable2Optimum) {
  // Proposition 1's instance: the optimum (22 at capacity 10) needs
  // different transfer and computation orders, so matching it proves the
  // search really covers the independent pair space.
  const MilpResult res =
      solve_order_milp(testing::table2_instance(), testing::kTable2Capacity);
  EXPECT_TRUE(res.proved_optimal);
  EXPECT_NEAR(res.makespan, 22.0, 1e-9);
  EXPECT_EQ(res.lower_bound, res.makespan);
}

TEST(MilpSolver, AgreesWithBranchBoundOnRandomCorpus) {
  // Same engine-scored value set, same definitely_less incumbent
  // discipline: a proved milp incumbent and branch-bound's both sit
  // within kEps of the true optimum, so they agree to 2*kEps. (They may
  // be *different* equally-optimal schedules whose start-time sums round
  // differently in the last bits; the differential suite separately
  // checks the corpus where the values coincide bitwise.)
  Rng rng(77);
  for (int iter = 0; iter < 40; ++iter) {
    const Instance inst = testing::random_instance(rng, 2 + rng.index(3));
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    MilpOptions options;
    options.max_nodes = 200000;
    const MilpResult mi = solve_order_milp(inst, capacity, options);
    const PairOrderResult bb = best_pair_order(inst, capacity);
    ASSERT_TRUE(mi.proved_optimal) << "iter " << iter;
    EXPECT_NEAR(mi.makespan, bb.makespan, 2 * kEps) << "iter " << iter;
    EXPECT_TRUE(testing::feasible(inst, mi.schedule, capacity));
    EXPECT_EQ(mi.makespan, mi.schedule.makespan(inst));
  }
}

TEST(MilpSolver, AgreesWithBranchBoundOnDuplex) {
  Rng rng(78);
  for (int iter = 0; iter < 25; ++iter) {
    std::vector<Task> tasks;
    const std::size_t n = 2 + rng.index(3);
    for (std::size_t i = 0; i < n; ++i) {
      tasks.push_back(Task{.id = 0,
                           .comm = rng.uniform(0.5, 10.0),
                           .comp = rng.uniform(0.5, 10.0),
                           .mem = rng.uniform(0.1, 10.0),
                           .channel = static_cast<ChannelId>(rng.index(2)),
                           .name = {}});
    }
    const Instance inst{std::move(tasks)};
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    MilpOptions options;
    options.max_nodes = 200000;
    const MilpResult mi = solve_order_milp(inst, capacity, options);
    const PairOrderResult bb = best_pair_order(inst, capacity);
    ASSERT_TRUE(mi.proved_optimal) << "iter " << iter;
    EXPECT_NEAR(mi.makespan, bb.makespan, 2 * kEps) << "iter " << iter;
    EXPECT_TRUE(testing::feasible(inst, mi.schedule, capacity));
  }
}

TEST(MilpSolver, NeverWorseThanExhaustiveCommonOrders) {
  // Permutation schedules are a subset of the pair space (Proposition 1
  // shows the containment can be strict).
  Rng rng(79);
  for (int iter = 0; iter < 20; ++iter) {
    const Instance inst = testing::random_instance(rng, 4);
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    MilpOptions options;
    options.max_nodes = 200000;
    const MilpResult mi = solve_order_milp(inst, capacity, options);
    const ExhaustiveResult ex = best_common_order(inst, capacity);
    ASSERT_TRUE(mi.proved_optimal);
    EXPECT_TRUE(approx_leq(mi.makespan, ex.makespan));
  }
}

TEST(MilpSolver, GridVariantsProveTheSameOptimum) {
  // milp:T only coarsens the *bound model* (snapped down, still a
  // relaxation); a finished search returns the identical proved-optimal
  // makespan for every T.
  Rng rng(80);
  for (int iter = 0; iter < 15; ++iter) {
    const Instance inst = testing::random_instance(rng, 4);
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    MilpOptions exact;
    exact.max_nodes = 200000;
    const MilpResult base = solve_order_milp(inst, capacity, exact);
    ASSERT_TRUE(base.proved_optimal);
    for (const std::size_t grid : {4u, 8u, 32u}) {
      MilpOptions coarse = exact;
      coarse.grid = grid;
      const MilpResult res = solve_order_milp(inst, capacity, coarse);
      ASSERT_TRUE(res.proved_optimal) << "grid " << grid;
      EXPECT_NEAR(res.makespan, base.makespan, 2 * kEps) << "grid " << grid;
    }
  }
}

TEST(MilpSolver, ProvedImpliesBoundMatchesAndBoundNeverExceedsMakespan) {
  Rng rng(81);
  for (int iter = 0; iter < 20; ++iter) {
    const Instance inst = testing::random_instance(rng, 3 + rng.index(2));
    const Mem capacity = testing::random_capacity(rng, inst, 2.0);
    MilpOptions options;
    options.max_nodes = iter % 2 == 0 ? 200000 : 5;  // alternate: starved
    const MilpResult res = solve_order_milp(inst, capacity, options);
    EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity));
    EXPECT_TRUE(approx_leq(res.lower_bound, res.makespan));
    if (res.proved_optimal) {
      EXPECT_EQ(res.lower_bound, res.makespan);
    }
  }
}

TEST(MilpSolver, CancellationKeepsACompleteIncumbent) {
  // should_stop firing immediately: the warm start already produced a
  // complete feasible schedule, which must be returned unproven.
  Rng rng(82);
  const Instance inst = testing::random_instance(rng, 6);
  const Mem capacity = testing::random_capacity(rng, inst, 1.5);
  MilpOptions options;
  options.should_stop = [] { return true; };
  const MilpResult res = solve_order_milp(inst, capacity, options);
  EXPECT_TRUE(res.stopped);
  EXPECT_FALSE(res.proved_optimal);
  EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity));
  EXPECT_LT(res.makespan, kInfiniteTime);
}

TEST(MilpSolver, EdgeCasesAndContracts) {
  const MilpResult empty = solve_order_milp(Instance{}, 1.0);
  EXPECT_TRUE(empty.proved_optimal);
  EXPECT_EQ(empty.makespan, 0.0);

  const Instance one = Instance::from_comm_comp({{2, 3}});
  const MilpResult single = solve_order_milp(one, 2.0);
  EXPECT_TRUE(single.proved_optimal);
  EXPECT_NEAR(single.makespan, 5.0, 1e-12);

  Rng rng(83);
  const Instance big = testing::random_instance(rng, 9);
  EXPECT_THROW((void)solve_order_milp(big, kInfiniteMem),
               std::invalid_argument);
  const Instance heavy = Instance::from_comm_comp({{5, 1}});
  EXPECT_THROW((void)solve_order_milp(heavy, 4.0), std::invalid_argument);
}

TEST(MilpRegistry, SolverKeyAndGridArguments) {
  const SolveRequest request{
      .instance = testing::table2_instance(),
      .capacity = testing::kTable2Capacity,
  };
  const SolveResult base = solve(request, "milp", {});
  EXPECT_TRUE(base.proved_optimal);
  EXPECT_NEAR(base.makespan, 22.0, 1e-9);
  EXPECT_EQ(base.lower_bound, base.makespan);
  EXPECT_EQ(base.optimality_gap(), 0.0);

  const SolveResult grid = solve(request, "milp:8", {});
  EXPECT_TRUE(grid.proved_optimal);
  EXPECT_EQ(grid.makespan, base.makespan);

  EXPECT_THROW((void)solve(request, "milp:0", {}), std::invalid_argument);
  EXPECT_THROW((void)solve(request, "milp:8:9", {}), std::invalid_argument);
  SolveRequest batched = request;
  batched.batch_size = 2;
  EXPECT_THROW((void)solve(batched, "milp", {}), std::invalid_argument);
}

TEST(MilpWire, OptimalityCertificateRoundTrips) {
  WireResponse response;
  response.status = WireResponse::Status::kOk;
  response.id = "req-1";
  response.winner = "milp";
  response.makespan = 22.0;
  response.evaluations = 7;
  response.proved_optimal = true;
  response.lower_bound = 22.0;
  response.gap = 0.0;
  response.order = {0, 1, 2};
  response.schedule = {{0.0, 1.0}, {1.0, 2.0}, {2.0, 3.0}};

  std::stringstream wire;
  write_response(wire, response);
  const auto parsed = read_response(wire);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->proved_optimal);
  EXPECT_EQ(parsed->lower_bound, 22.0);
  ASSERT_TRUE(parsed->gap.has_value());
  EXPECT_EQ(*parsed->gap, 0.0);

  // Unproven path: no gap line when no positive bound exists.
  response.proved_optimal = false;
  response.lower_bound = 0.0;
  response.gap.reset();
  std::stringstream wire2;
  write_response(wire2, response);
  const auto parsed2 = read_response(wire2);
  ASSERT_TRUE(parsed2.has_value());
  EXPECT_FALSE(parsed2->proved_optimal);
  EXPECT_EQ(parsed2->lower_bound, 0.0);
  EXPECT_FALSE(parsed2->gap.has_value());
}

}  // namespace
}  // namespace dts
