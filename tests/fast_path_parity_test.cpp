/// \file fast_path_parity_test.cpp
/// Bit-for-bit parity of the data-oriented fast path (core/compiled.hpp)
/// against the reference engine. Every comparison here is EXACT double
/// equality, not epsilon-based: the fast path promises the same
/// floating-point operation sequence as ExecutionState, so even the last
/// ulp must agree.
///
/// The oracle is always the raw reference engine — ExecutionState +
/// execute_order + Schedule::makespan. It must NOT be simulate_order /
/// makespan_of_order: those are re-expressed on top of evaluate_order, so
/// comparing against them would be circular.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/compiled.hpp"
#include "core/instance.hpp"
#include "core/schedule.hpp"
#include "core/simulate.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

/// Random instance across `channels` engines, memory decoupled from the
/// communication time, with the same tie/zero edge cases the differential
/// suite uses.
Instance random_channel_instance(Rng& rng, std::size_t n,
                                 std::size_t channels) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.comm = rng.uniform(0.0, 10.0);
    t.comp = rng.uniform(0.0, 10.0);
    if (rng.chance(0.1)) t.comm = 0.0;
    if (rng.chance(0.1)) t.comp = 0.0;
    if (rng.chance(0.25)) t.comm = std::floor(t.comm);
    if (rng.chance(0.25)) t.comp = std::floor(t.comp);
    t.mem = rng.uniform(0.1, 10.0);
    t.channel = static_cast<ChannelId>(rng.index(channels));
    tasks.push_back(std::move(t));
  }
  return Instance(std::move(tasks));
}

std::vector<TaskId> shuffled_order(Rng& rng, const Instance& inst) {
  std::vector<TaskId> order = inst.submission_order();
  for (std::size_t i = order.size(); i > 1; --i) {
    std::swap(order[i - 1], order[rng.index(i)]);
  }
  return order;
}

/// Capacity regimes the corpus sweeps: the tightest feasible, a mildly
/// constrained one, and effectively unconstrained.
Mem capacity_for(const Instance& inst, int regime) {
  const Mem mc = std::max(inst.min_capacity(), 0.1);
  switch (regime) {
    case 0: return mc;              // tightest: admission waits dominate
    case 1: return 1.5 * mc;        // constrained
    default: return 1e9;            // effectively infinite
  }
}

/// Reference makespan + engine: raw ExecutionState path, independent of
/// the fast path under test.
Time oracle_makespan(const Instance& inst, std::span<const TaskId> order,
                     ExecutionState& state, Schedule& sched) {
  execute_order(inst, order, state, sched);
  return sched.makespan(inst);
}

TEST(FastPathParity, EvaluateOrderMatchesReferenceEngineBitForBit) {
  Rng rng(2026);
  EvalScratch scratch;
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t channels = 1 + rng.index(3);
    const std::size_t n = 1 + rng.index(14);
    const Instance inst = random_channel_instance(rng, n, channels);
    const Mem capacity = capacity_for(inst, static_cast<int>(rng.index(3)));
    const std::vector<TaskId> order = shuffled_order(rng, inst);

    ExecutionState state(capacity, inst.num_channels());
    Schedule sched(inst.size());
    const Time want = oracle_makespan(inst, order, state, sched);

    const CompiledInstance ci(inst);
    const Time got = evaluate_order(ci, order, capacity, scratch);
    ASSERT_EQ(want, got) << "iter " << iter;

    // The full engine state must match, not just the makespan: batch and
    // exact callers read these for carried state and tie-breaks.
    ASSERT_EQ(state.comp_available(), scratch.comp_available()) << iter;
    ASSERT_EQ(state.comm_available(), scratch.comm_available()) << iter;
    ASSERT_EQ(state.now(), scratch.now()) << iter;
    ASSERT_EQ(state.used_memory(), scratch.used_memory()) << iter;
    ASSERT_EQ(state.active_tasks(), scratch.active_tasks()) << iter;
  }
}

TEST(FastPathParity, RecordingOverloadMatchesExecuteOrderSchedules) {
  Rng rng(777);
  EvalScratch scratch;
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t channels = 1 + rng.index(3);
    const Instance inst = random_channel_instance(rng, 2 + rng.index(12),
                                                  channels);
    const Mem capacity = capacity_for(inst, static_cast<int>(rng.index(3)));
    const std::vector<TaskId> order = shuffled_order(rng, inst);

    ExecutionState state(capacity, inst.num_channels());
    Schedule want(inst.size());
    execute_order(inst, order, state, want);

    const CompiledInstance ci(inst);
    Schedule got(inst.size());
    const Time ms = evaluate_order(ci, order, capacity, scratch, got);
    ASSERT_EQ(want.makespan(inst), ms) << iter;
    for (TaskId id = 0; id < inst.size(); ++id) {
      ASSERT_EQ(want[id].comm_start, got[id].comm_start) << iter << " " << id;
      ASSERT_EQ(want[id].comp_start, got[id].comp_start) << iter << " " << id;
    }
  }
}

TEST(FastPathParity, CarriedSnapshotsMatchMidStream) {
  // Split an order in two, run the first half on the reference engine,
  // snapshot, and verify the fast path replays the second half from that
  // snapshot exactly as a restored ExecutionState does.
  Rng rng(31337);
  EvalScratch scratch;
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t channels = 1 + rng.index(3);
    const Instance inst = random_channel_instance(rng, 4 + rng.index(10),
                                                  channels);
    const Mem capacity = capacity_for(inst, static_cast<int>(rng.index(3)));
    const std::vector<TaskId> order = shuffled_order(rng, inst);
    const std::size_t cut = 1 + rng.index(order.size() - 1);
    const std::span<const TaskId> head(order.data(), cut);
    const std::span<const TaskId> tail(order.data() + cut,
                                       order.size() - cut);

    ExecutionState warmup(capacity, inst.num_channels());
    Schedule partial(inst.size());
    execute_order(inst, head, warmup, partial);
    const ExecutionState::Snapshot snap = warmup.snapshot();

    ExecutionState resumed(capacity, snap);
    Schedule want(inst.size());
    execute_order(inst, tail, resumed, want);

    const CompiledInstance ci(inst);
    Schedule got(inst.size());
    (void)evaluate_order(ci, tail, capacity, scratch, got, &snap);
    for (const TaskId id : tail) {
      ASSERT_EQ(want[id].comm_start, got[id].comm_start) << iter << " " << id;
      ASSERT_EQ(want[id].comp_start, got[id].comp_start) << iter << " " << id;
    }
    ASSERT_EQ(resumed.comp_available(), scratch.comp_available()) << iter;
    ASSERT_EQ(resumed.comm_available(), scratch.comm_available()) << iter;
    ASSERT_EQ(resumed.now(), scratch.now()) << iter;
    ASSERT_EQ(resumed.used_memory(), scratch.used_memory()) << iter;
  }
}

TEST(FastPathParity, PrefixResumeMatchesFromScratchOnSwapNeighborhoods) {
  Rng rng(90210);
  EvalScratch scratch;
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t channels = 1 + rng.index(3);
    const Instance inst = random_channel_instance(rng, 6 + rng.index(10),
                                                  channels);
    const Mem capacity = capacity_for(inst, static_cast<int>(rng.index(3)));
    const CompiledInstance ci(inst);
    PrefixResumeEvaluator evaluator(ci, capacity);

    std::vector<TaskId> reference = shuffled_order(rng, inst);
    ASSERT_EQ(evaluate_order(ci, reference, capacity, scratch),
              evaluator.set_reference(reference))
        << rep;

    std::vector<TaskId> candidate;
    for (int move = 0; move < 50; ++move) {
      candidate = reference;
      const std::size_t n = candidate.size();
      if (rng.chance(0.5)) {  // adjacent swap — the local-search hot case
        const std::size_t i = rng.index(n - 1);
        std::swap(candidate[i], candidate[i + 1]);
      } else {  // arbitrary pair swap
        std::swap(candidate[rng.index(n)], candidate[rng.index(n)]);
      }
      const Time from_scratch = evaluate_order(ci, candidate, capacity,
                                               scratch);
      ASSERT_EQ(from_scratch, evaluator.evaluate(candidate))
          << rep << " move " << move;
      // Occasionally move the reference — exercises the incremental
      // re-checkpointing path local search takes on every improvement.
      if (rng.chance(0.2)) {
        ASSERT_EQ(from_scratch, evaluator.set_reference(candidate))
            << rep << " move " << move;
        reference = candidate;
      }
    }
    // The whole point: checkpoints must actually be resumed from.
    EXPECT_GT(evaluator.tasks_resumed(), 0u) << rep;
  }
}

TEST(FastPathParity, PrefixResumeMatchesWithCarriedSnapshot) {
  Rng rng(4242);
  EvalScratch scratch;
  for (int rep = 0; rep < 40; ++rep) {
    const std::size_t channels = 1 + rng.index(3);
    const Instance inst = random_channel_instance(rng, 6 + rng.index(8),
                                                  channels);
    const Mem capacity = capacity_for(inst, static_cast<int>(rng.index(3)));

    // Any engine state reached by real execution is a valid carried state.
    ExecutionState warmup(capacity, inst.num_channels());
    Schedule partial(inst.size());
    const std::vector<TaskId> all = shuffled_order(rng, inst);
    const std::size_t cut = 1 + rng.index(all.size() - 2);
    execute_order(inst, std::span<const TaskId>(all.data(), cut), warmup,
                  partial);
    const ExecutionState::Snapshot snap = warmup.snapshot();
    const std::vector<TaskId> rest(all.begin() +
                                       static_cast<std::ptrdiff_t>(cut),
                                   all.end());

    const CompiledInstance ci(inst);
    PrefixResumeEvaluator evaluator(ci, capacity, snap);
    ASSERT_EQ(evaluate_order(ci, rest, capacity, scratch, &snap),
              evaluator.set_reference(rest))
        << rep;
    std::vector<TaskId> candidate = rest;
    for (int move = 0; move < 20 && candidate.size() > 1; ++move) {
      const std::size_t i = rng.index(candidate.size() - 1);
      std::swap(candidate[i], candidate[i + 1]);
      ASSERT_EQ(evaluate_order(ci, candidate, capacity, scratch, &snap),
                evaluator.evaluate(candidate))
          << rep << " move " << move;
    }
  }
}

TEST(FastPathParity, NextPermutationScanMatchesFromScratch) {
  // The exhaustive solver moves the reference once per permutation; the
  // resumed stream must track a from-scratch evaluation bit for bit.
  Rng rng(555);
  EvalScratch scratch;
  for (std::size_t channels = 1; channels <= 3; ++channels) {
    const Instance inst = random_channel_instance(rng, 5, channels);
    const Mem capacity = capacity_for(inst, 1);
    const CompiledInstance ci(inst);
    PrefixResumeEvaluator evaluator(ci, capacity);
    std::vector<TaskId> order = inst.submission_order();
    do {
      ASSERT_EQ(evaluate_order(ci, order, capacity, scratch),
                evaluator.set_reference(order));
    } while (std::next_permutation(order.begin(), order.end()));
    EXPECT_GT(evaluator.tasks_resumed(), 0u);
  }
}

TEST(FastPathParity, ErrorPathsMatchTheReferenceEngine) {
  const Instance inst = Instance::from_comm_comp({{2, 3}, {4, 1}});
  const CompiledInstance ci(inst);
  const std::vector<TaskId> order = inst.submission_order();
  EvalScratch scratch;

  // Negative capacity: same exception type as ExecutionState's ctor.
  EXPECT_THROW((void)evaluate_order(ci, order, -1.0, scratch),
               std::invalid_argument);

  // A task that can never fit: identical type AND message (callers print
  // these; the fast path must not degrade the diagnostics).
  const Mem tiny = 3.0;  // task 1 needs mem 4 (mem == comm here)
  std::string want;
  try {
    ExecutionState state(tiny, inst.num_channels());
    Schedule sched(inst.size());
    execute_order(inst, order, state, sched);
    FAIL() << "reference engine accepted an infeasible task";
  } catch (const std::invalid_argument& e) {
    want = e.what();
  }
  try {
    (void)evaluate_order(ci, order, tiny, scratch);
    FAIL() << "fast path accepted an infeasible task";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(want, e.what());
  }

  // Unknown task id: out_of_range, as the reference path's .at() throws.
  const std::vector<TaskId> bogus = {0, 7};
  EXPECT_THROW((void)evaluate_order(ci, bogus, 100.0, scratch),
               std::out_of_range);

  // A failed set_reference invalidates the reference instead of leaving
  // half-recorded checkpoints behind.
  PrefixResumeEvaluator evaluator(ci, tiny);
  EXPECT_THROW((void)evaluator.set_reference(order), std::invalid_argument);
  EXPECT_TRUE(evaluator.reference().empty());
}

TEST(FastPathParity, ReexpressedEntryPointsStillAgreeWithTheOracle) {
  // simulate_order/makespan_of_order now run on the fast path; pin them
  // against the raw engine too so a regression cannot hide behind the
  // re-expression.
  Rng rng(8);
  for (int iter = 0; iter < 50; ++iter) {
    const Instance inst = random_channel_instance(rng, 2 + rng.index(10),
                                                  1 + rng.index(3));
    const Mem capacity = capacity_for(inst, static_cast<int>(rng.index(3)));
    const std::vector<TaskId> order = shuffled_order(rng, inst);

    ExecutionState state(capacity, inst.num_channels());
    Schedule want(inst.size());
    const Time oracle = oracle_makespan(inst, order, state, want);

    ASSERT_EQ(oracle, makespan_of_order(inst, order, capacity)) << iter;
    const Schedule got = simulate_order(inst, order, capacity);
    for (TaskId id = 0; id < inst.size(); ++id) {
      ASSERT_EQ(want[id].comm_start, got[id].comm_start) << iter << " " << id;
      ASSERT_EQ(want[id].comp_start, got[id].comp_start) << iter << " " << id;
    }
  }
}

}  // namespace
}  // namespace dts
