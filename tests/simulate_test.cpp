#include "core/simulate.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/johnson.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

Task make_task(Time comm, Time comp, Mem mem) {
  return Task{.id = 0, .comm = comm, .comp = comp, .mem = mem, .name = {}};
}

TEST(ExecutionState, FreshStateIsEmpty) {
  ExecutionState s(10.0);
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_DOUBLE_EQ(s.used_memory(), 0.0);
  EXPECT_EQ(s.active_tasks(), 0u);
}

TEST(ExecutionState, RejectsNegativeCapacity) {
  EXPECT_THROW(ExecutionState(-1.0), std::invalid_argument);
}

TEST(ExecutionState, StartAdvancesLinkAndQueuesComp) {
  ExecutionState s(10.0);
  const Task t = make_task(3, 4, 5);
  const TaskTimes tt = s.start(t);
  EXPECT_DOUBLE_EQ(tt.comm_start, 0.0);
  EXPECT_DOUBLE_EQ(tt.comp_start, 3.0);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
  EXPECT_DOUBLE_EQ(s.comp_available(), 7.0);
  EXPECT_DOUBLE_EQ(s.used_memory(), 5.0);
}

TEST(ExecutionState, MemoryReleasedAtComputeEnd) {
  ExecutionState s(10.0);
  s.start(make_task(3, 4, 5));
  EXPECT_TRUE(s.advance_to_next_release());
  EXPECT_DOUBLE_EQ(s.now(), 7.0);
  EXPECT_DOUBLE_EQ(s.used_memory(), 0.0);
  EXPECT_FALSE(s.advance_to_next_release());
}

TEST(ExecutionState, FitsRespectsCapacity) {
  ExecutionState s(10.0);
  s.start(make_task(2, 10, 6));
  EXPECT_TRUE(s.fits(make_task(1, 1, 4)));
  EXPECT_FALSE(s.fits(make_task(1, 1, 4.5)));
}

TEST(ExecutionState, StartThrowsWhenNotFitting) {
  ExecutionState s(10.0);
  s.start(make_task(2, 10, 6));
  EXPECT_THROW((void)s.start(make_task(1, 1, 5)), std::logic_error);
}

TEST(ExecutionState, ZeroComputationReleasesImmediately) {
  ExecutionState s(10.0);
  s.start(make_task(4, 0, 9));
  // comp runs [4,4): by the time the link is free again the memory is gone.
  EXPECT_DOUBLE_EQ(s.used_memory(), 0.0);
  EXPECT_EQ(s.active_tasks(), 0u);
}

TEST(ExecutionState, InducedIdleComputation) {
  ExecutionState s(20.0);
  s.start(make_task(2, 10, 1));  // processor busy until 12, link free at 2
  // A task with comm 4 would arrive at 6 < 12: no induced idle.
  EXPECT_DOUBLE_EQ(s.induced_comp_idle(make_task(4, 1, 1)), 0.0);
  // A task with comm 15 would arrive at 17: 5 units of idle.
  EXPECT_DOUBLE_EQ(s.induced_comp_idle(make_task(15, 1, 1)), 5.0);
}

TEST(ExecutionState, AdvanceToReleasesPassedWork) {
  ExecutionState s(10.0);
  s.start(make_task(1, 2, 5));  // comp ends at 3
  s.advance_to(2.5);
  EXPECT_DOUBLE_EQ(s.used_memory(), 5.0);
  s.advance_to(3.0);
  EXPECT_DOUBLE_EQ(s.used_memory(), 0.0);
  // Time never moves backwards.
  s.advance_to(1.0);
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(ExecutionState, SnapshotRoundTrip) {
  ExecutionState s(10.0);
  s.start(make_task(2, 8, 4));  // active until 10
  s.start(make_task(3, 1, 3));  // comp [10,11): active until 11
  const ExecutionState::Snapshot snap = s.snapshot();
  ExecutionState r(10.0, snap);
  EXPECT_DOUBLE_EQ(r.comm_available(), s.comm_available());
  EXPECT_DOUBLE_EQ(r.comp_available(), s.comp_available());
  EXPECT_DOUBLE_EQ(r.used_memory(), s.used_memory());
  EXPECT_EQ(r.active_tasks(), s.active_tasks());
}

TEST(ExecutionState, SnapshotDropsFinishedEntries) {
  ExecutionState::Snapshot snap;
  snap.comm_available = {10.0};
  snap.comp_available = 12.0;
  snap.active = {{5.0, 100.0}, {15.0, 7.0}};  // first already finished
  ExecutionState s(20.0, snap);
  EXPECT_DOUBLE_EQ(s.used_memory(), 7.0);
  EXPECT_EQ(s.active_tasks(), 1u);
}

TEST(SimulateOrder, InfiniteMemoryMatchesFlowshopRecurrence) {
  const Instance inst = testing::table3_instance();
  const std::vector<TaskId> order{1, 2, 0, 3};  // Johnson order B C A D
  const Schedule s = simulate_order(inst, order, kInfiniteMem);
  EXPECT_DOUBLE_EQ(s.makespan(inst), 12.0);
}

TEST(SimulateOrder, RequiresFullOrder) {
  const Instance inst = testing::table3_instance();
  const std::vector<TaskId> partial{0, 1};
  EXPECT_THROW((void)simulate_order(inst, partial, kInfiniteMem),
               std::invalid_argument);
}

TEST(SimulateOrder, ThrowsWhenTaskCannotEverFit) {
  const Instance inst = Instance::from_comm_comp({{5, 1}, {2, 1}});
  const auto order = inst.submission_order();
  EXPECT_THROW((void)simulate_order(inst, order, 4.0), std::invalid_argument);
}

TEST(SimulateOrder, SequentialUnderMinimumCapacity) {
  // With capacity = max task memory, transfers serialize behind the
  // previous computation whenever both tasks' footprints exceed C.
  const Instance inst = Instance::from_comm_comp({{4, 3}, {4, 3}});
  const auto order = inst.submission_order();
  const Schedule s = simulate_order(inst, order, 4.0);
  EXPECT_TRUE(testing::feasible(inst, s, 4.0));
  EXPECT_DOUBLE_EQ(s.makespan(inst), 14.0);  // 4+3 then 4+3, zero overlap
}

TEST(SimulateOrder, HalfOpenMemoryIntervalAdmitsBackToBack) {
  // Task 1's transfer may start exactly when task 0's computation ends.
  const Instance inst = Instance::from_comm_comp({{4, 3}, {4, 3}});
  const auto order = inst.submission_order();
  const Schedule s = simulate_order(inst, order, 4.0);
  EXPECT_DOUBLE_EQ(s[1].comm_start, 7.0);
}

TEST(SimulateOrder, RandomOrdersAlwaysFeasible) {
  Rng rng(2024);
  for (int iter = 0; iter < 200; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem capacity = testing::random_capacity(rng, inst);
    std::vector<TaskId> order = inst.submission_order();
    // Shuffle via random keys.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    const Schedule s = simulate_order(inst, order, capacity);
    EXPECT_TRUE(testing::feasible(inst, s, capacity));
  }
}

TEST(ExecuteOrder, CarriesStateAcrossCalls) {
  const Instance inst = testing::table3_instance();
  ExecutionState state(kInfiniteMem);
  Schedule sched(inst.size());
  const std::vector<TaskId> first{1, 2};
  const std::vector<TaskId> second{0, 3};
  execute_order(inst, first, state, sched);
  execute_order(inst, second, state, sched);
  // Identical to executing the concatenated order in one go.
  const std::vector<TaskId> full{1, 2, 0, 3};
  const Schedule reference = simulate_order(inst, full, kInfiniteMem);
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(sched[i].comm_start, reference[i].comm_start);
    EXPECT_DOUBLE_EQ(sched[i].comp_start, reference[i].comp_start);
  }
}

}  // namespace
}  // namespace dts
