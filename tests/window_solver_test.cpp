#include "exact/window_solver.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/johnson.hpp"
#include "core/validate.hpp"
#include "exact/exhaustive.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(WindowSolver, Names) {
  EXPECT_EQ(window_heuristic_name({.window = 3, .mode = WindowMode::kCommonOrder}),
            "lp.3");
  EXPECT_EQ(window_heuristic_name({.window = 6, .mode = WindowMode::kPairOrder}),
            "lp.6p");
}

TEST(WindowSolver, RejectsBadWindowSizes) {
  const Instance inst = testing::table3_instance();
  EXPECT_THROW((void)schedule_windowed(inst, 6.0, {.window = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)schedule_windowed(inst, 6.0, {.window = 9}),
               std::invalid_argument);
}

TEST(WindowSolver, WindowCoveringWholeInstanceIsExact) {
  Rng rng(61);
  for (int iter = 0; iter < 40; ++iter) {
    const Instance inst = testing::random_instance(rng, 5);
    const Mem capacity = testing::random_capacity(rng, inst);
    const Schedule windowed =
        schedule_windowed(inst, capacity, {.window = 5});
    const ExhaustiveResult exact = best_common_order(inst, capacity);
    EXPECT_NEAR(windowed.makespan(inst), exact.makespan, 1e-9);
  }
}

TEST(WindowSolver, FeasibleForAllSizesAndModes) {
  Rng rng(62);
  for (int iter = 0; iter < 20; ++iter) {
    const Instance inst = testing::random_instance(rng, 13);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (std::size_t k : {1u, 3u, 4u, 6u}) {
      const Schedule s = schedule_windowed(
          inst, capacity, {.window = k, .mode = WindowMode::kCommonOrder});
      ASSERT_TRUE(testing::feasible(inst, s, capacity)) << "lp." << k;
      EXPECT_GE(s.makespan(inst) + 1e-9, omim(inst));
    }
    for (std::size_t k : {3u, 4u}) {
      const Schedule s = schedule_windowed(
          inst, capacity, {.window = k, .mode = WindowMode::kPairOrder});
      ASSERT_TRUE(testing::feasible(inst, s, capacity)) << "lp." << k << "p";
    }
  }
}

TEST(WindowSolver, WindowOneEqualsSubmissionOrder) {
  // Singleton windows leave no ordering freedom: lp.1 == OS.
  Rng rng(63);
  const Instance inst = testing::random_instance(rng, 10);
  const Mem capacity = testing::random_capacity(rng, inst);
  const Schedule lp1 = schedule_windowed(inst, capacity, {.window = 1});
  const Schedule os =
      simulate_order(inst, inst.submission_order(), capacity);
  for (TaskId i = 0; i < inst.size(); ++i) {
    EXPECT_DOUBLE_EQ(lp1[i].comm_start, os[i].comm_start);
    EXPECT_DOUBLE_EQ(lp1[i].comp_start, os[i].comp_start);
  }
}

TEST(WindowSolver, PairModeNeverWorseThanCommonModePerWindow) {
  // Same windows, strictly larger per-window search space. (Greedy window
  // composition does not guarantee global dominance, but on the first
  // window it holds by construction; we check the whole-instance case
  // where there is exactly one window.)
  Rng rng(64);
  for (int iter = 0; iter < 25; ++iter) {
    const Instance inst = testing::random_instance(rng, 5);
    const Mem capacity = testing::random_capacity(rng, inst, 1.6);
    const Schedule common = schedule_windowed(
        inst, capacity, {.window = 5, .mode = WindowMode::kCommonOrder});
    const Schedule pair = schedule_windowed(
        inst, capacity, {.window = 5, .mode = WindowMode::kPairOrder});
    EXPECT_LE(pair.makespan(inst), common.makespan(inst) + 1e-9);
  }
}

TEST(WindowSolver, EmptyInstance) {
  const Schedule s = schedule_windowed(Instance{}, 1.0, {.window = 4});
  EXPECT_EQ(s.size(), 0u);
}

TEST(WindowSolver, PairModeLowerBoundPrunesWithoutChangingSchedules) {
  // The carried-state-strengthened capacity-aware bound lets a window's
  // pair search stop at the first incumbent that provably matches it.
  // Pruning must be pure acceleration: identical schedules, strictly
  // fewer pairs simulated over the corpus, and at least one window
  // actually closed by the bound (a regression here means the early exit
  // went dead — e.g. the bound stopped accounting for the carried state).
  Rng rng(65);
  std::uint64_t pruned_pairs = 0;
  std::uint64_t full_pairs = 0;
  std::size_t proved = 0;
  for (int iter = 0; iter < 15; ++iter) {
    const Instance inst = testing::random_instance(rng, 11);
    const Mem capacity = testing::random_capacity(rng, inst, 1.8);
    const WindowedResult with_lb = solve_windowed(
        inst, capacity,
        {.window = 4, .mode = WindowMode::kPairOrder, .use_lower_bounds = true});
    const WindowedResult without_lb = solve_windowed(
        inst, capacity,
        {.window = 4, .mode = WindowMode::kPairOrder, .use_lower_bounds = false});
    for (TaskId id = 0; id < inst.size(); ++id) {
      EXPECT_EQ(with_lb.schedule[id].comm_start,
                without_lb.schedule[id].comm_start) << "task " << id;
      EXPECT_EQ(with_lb.schedule[id].comp_start,
                without_lb.schedule[id].comp_start) << "task " << id;
    }
    EXPECT_EQ(without_lb.windows_proved, 0u);
    pruned_pairs += with_lb.pairs_simulated;
    full_pairs += without_lb.pairs_simulated;
    proved += with_lb.windows_proved;
  }
  EXPECT_LT(pruned_pairs, full_pairs);
  EXPECT_GT(proved, 0u);
}

}  // namespace
}  // namespace dts
