/// Golden parity for machine-parameterized solving: stripping the times
/// off a generated (byte-annotated) trace and re-binding it with the
/// machine it was generated for must reproduce the generator's
/// time-trace BIT FOR BIT — same comm values, and the same makespan from
/// every registered solver. This pins the "one affine implementation"
/// guarantee end to end: if generation-time costing and bind()-time
/// costing ever diverge by a single ulp, these tests fail.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/solver.hpp"
#include "model/machine.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "trace/transforms.hpp"

namespace dts {
namespace {

/// Small trace configs keep the exact solvers tractable: 5 tasks is the
/// same ceiling the differential test uses for branch-bound's (n!)^2
/// pair-order search.
TraceConfig small_config(std::uint64_t seed) {
  TraceConfig config;
  config.seed = seed;
  config.min_tasks = 5;
  config.max_tasks = 5;
  return config;
}

void expect_bitwise_task_parity(const Instance& generated,
                                const Instance& rebound) {
  ASSERT_EQ(rebound.size(), generated.size());
  for (TaskId i = 0; i < generated.size(); ++i) {
    // EXPECT_EQ, not EXPECT_DOUBLE_EQ: parity is exact, not within ulps.
    EXPECT_EQ(rebound[i].comm, generated[i].comm) << "task " << i;
    EXPECT_EQ(rebound[i].comp, generated[i].comp) << "task " << i;
    EXPECT_EQ(rebound[i].mem, generated[i].mem) << "task " << i;
    EXPECT_EQ(rebound[i].channel, generated[i].channel) << "task " << i;
  }
}

TEST(MachineParity, BindReproducesGeneratedTimesBitForBit) {
  for (ChemistryKernel kernel : {ChemistryKernel::kHartreeFock,
                                 ChemistryKernel::kCoupledClusterSD}) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      TraceConfig config;
      config.seed = seed;
      config.min_tasks = 40;
      config.max_tasks = 60;
      const Instance generated = generate_trace(kernel, config);
      ASSERT_TRUE(generated.fully_byte_annotated());
      const Instance bytes_only = strip_comm_times(generated);
      EXPECT_FALSE(bytes_only.fully_bound());
      expect_bitwise_task_parity(generated,
                                 bind(bytes_only, machine_from_name("paper")));
    }
  }
}

TEST(MachineParity, DuplexBindReproducesWritebackTraces) {
  TraceConfig config;
  config.seed = 3;
  config.min_tasks = 30;
  config.max_tasks = 40;
  config.machine = MachineModel::duplex_pcie();
  const Instance generated =
      generate_trace(ChemistryKernel::kCoupledClusterSD, config);
  ASSERT_EQ(generated.num_channels(), 2u);
  ASSERT_TRUE(generated.fully_byte_annotated());
  expect_bitwise_task_parity(
      generated,
      bind(strip_comm_times(generated), machine_from_name("duplex-pcie")));
}

TEST(MachineParity, TraceRoundTripPreservesParity) {
  // The full interchange loop: generate -> write v3 -> read -> strip ->
  // bind("paper") stays bit-identical (precision 17 round-trips doubles).
  TraceConfig config;
  config.seed = 11;
  config.min_tasks = 30;
  config.max_tasks = 40;
  const Instance generated =
      generate_trace(ChemistryKernel::kHartreeFock, config);
  std::stringstream buffer;
  write_trace(buffer, generated);
  EXPECT_NE(buffer.str().find("# dts-trace v3"), std::string::npos);
  const Instance loaded = read_trace(buffer);
  expect_bitwise_task_parity(
      generated, bind(strip_comm_times(loaded), machine_from_name("paper")));
}

TEST(MachineParity, EverySolverMatchesOnReboundInstances) {
  // The end-to-end criterion: for every registered solver, solving the
  // machine-bound bytes-trace equals solving the generated time-trace,
  // makespan bit for bit. Small instances keep exhaustive/branch-bound
  // feasible; multi-channel-rejecting solvers must reject both sides the
  // same way.
  for (ChemistryKernel kernel : {ChemistryKernel::kHartreeFock,
                                 ChemistryKernel::kCoupledClusterSD}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      const Instance generated = generate_trace(kernel, small_config(seed));
      const Instance bytes_only = strip_comm_times(generated);

      SolveRequest generated_request;
      generated_request.instance = generated;
      generated_request.capacity = 1.5 * generated.min_capacity();

      SolveRequest rebound_request;
      rebound_request.instance = bytes_only;
      rebound_request.capacity = generated_request.capacity;
      rebound_request.machine = "paper";

      SolveOptions options;
      options.compute_bounds = false;

      for (const SolverListing& listing : list_solvers()) {
        const SolveResult expected =
            solve(generated_request, listing.name, options);
        const SolveResult actual =
            solve(rebound_request, listing.name, options);
        EXPECT_EQ(actual.makespan, expected.makespan)
            << to_string(kernel) << " seed " << seed << " solver "
            << listing.name;
        EXPECT_EQ(actual.winner, expected.winner) << listing.name;
      }
    }
  }
}

}  // namespace
}  // namespace dts
