/// Property tests for the canonical-instance fingerprint
/// (service/fingerprint.hpp): permutation, relabeling and trace
/// round-trips (v1/v2/v3) must preserve it; any value-level perturbation
/// (durations, memory, channel, byte annotation) must change it across a
/// large seeded corpus; and a cached order re-costed per machine must
/// reproduce a fresh solve on the bound instance bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <sstream>
#include <vector>

#include "core/simulate.hpp"
#include "core/solver.hpp"
#include "model/machine.hpp"
#include "service/fingerprint.hpp"
#include "service/service.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"
#include "trace/trace_io.hpp"

namespace dts {
namespace {

/// Random instance exercising every fingerprint-relevant field: multiple
/// channels and (optionally) byte annotations.
Instance random_annotated_instance(Rng& rng, std::size_t n,
                                   std::size_t channels, bool bytes) {
  std::vector<Task> tasks;
  tasks.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Task t;
    t.comm = rng.uniform(0.001, 10.0);
    t.comp = rng.uniform(0.001, 10.0);
    t.mem = rng.uniform(0.1, 10.0);
    t.channel = static_cast<ChannelId>(rng.index(channels));
    if (bytes) t.comm_bytes = rng.uniform(1.0, 1e9);
    t.name = "t" + std::to_string(i);
    tasks.push_back(t);
  }
  return Instance(std::move(tasks));
}

Instance shuffled(const Instance& inst, Rng& rng) {
  std::vector<TaskId> perm(inst.size());
  std::iota(perm.begin(), perm.end(), TaskId{0});
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.index(i)]);
  }
  std::vector<Task> tasks;
  tasks.reserve(perm.size());
  for (TaskId id : perm) tasks.push_back(inst[id]);
  return Instance(std::move(tasks));
}

TEST(Fingerprint, PermutationInvariant) {
  Rng rng(1001);
  for (int round = 0; round < 50; ++round) {
    const Instance inst =
        random_annotated_instance(rng, 2 + rng.index(30), 1 + rng.index(3),
                                  round % 2 == 0);
    const Instance perm = shuffled(inst, rng);
    EXPECT_EQ(fingerprint_of(inst), fingerprint_of(perm)) << "round " << round;
  }
}

TEST(Fingerprint, RelabelingInvariant) {
  Rng rng(1002);
  const Instance inst = random_annotated_instance(rng, 20, 2, true);
  std::vector<Task> renamed(inst.tasks());
  for (std::size_t i = 0; i < renamed.size(); ++i) {
    renamed[i].name = "renamed-" + std::to_string(997 * i);
  }
  EXPECT_EQ(fingerprint_of(inst), fingerprint_of(Instance(std::move(renamed))));
}

TEST(Fingerprint, TraceRoundTripInvariantAcrossVersions) {
  Rng rng(1003);
  // v1: single channel, no bytes. v2: multi-channel, no bytes. v3: byte
  // annotations (the writer emits the lowest sufficient version).
  const Instance v1 = random_annotated_instance(rng, 25, 1, false);
  const Instance v2 = random_annotated_instance(rng, 25, 3, false);
  const Instance v3 = random_annotated_instance(rng, 25, 2, true);
  for (const Instance* inst : {&v1, &v2, &v3}) {
    std::stringstream buffer;
    write_trace(buffer, *inst);
    const Instance back = read_trace(buffer);
    EXPECT_EQ(fingerprint_of(*inst), fingerprint_of(back));
  }
}

TEST(Fingerprint, TimelessTraceFingerprintsMachineIndependently) {
  // A bytes-only workload has one fingerprint no matter which machine it
  // will be bound to — binding is a cache-key concern, not an identity
  // concern.
  std::vector<Task> tasks;
  for (int i = 0; i < 8; ++i) {
    Task t;
    t.comm = kUnboundTime;
    t.comm_bytes = 1e6 * (i + 1);
    t.comp = 0.25 * (i + 1);
    t.mem = 1e6 * (i + 1);
    tasks.push_back(t);
  }
  const Instance unbound{std::move(tasks)};
  const Fingerprint fp = fingerprint_of(unbound);
  std::stringstream buffer;
  write_trace(buffer, unbound);
  EXPECT_EQ(fp, fingerprint_of(read_trace(buffer)));
  // Binding produces a different instance (costed comm), so its
  // fingerprint legitimately differs from the unbound one.
  EXPECT_FALSE(fp ==
               fingerprint_of(bind(unbound, machine_from_name("paper"))));
}

TEST(Fingerprint, DistinctInstancesNeverCollideAcrossCorpus) {
  Rng rng(1004);
  std::map<std::string, int> seen;  // hex fingerprint -> corpus index
  int corpus = 0;
  auto check = [&](const Instance& inst) {
    const std::string hex = fingerprint_of(inst).to_hex();
    const auto [it, inserted] = seen.emplace(hex, corpus);
    EXPECT_TRUE(inserted) << "fingerprint collision between corpus entries "
                          << it->second << " and " << corpus << ": " << hex;
    ++corpus;
  };

  for (int round = 0; round < 150; ++round) {
    const Instance inst = random_annotated_instance(
        rng, 1 + rng.index(40), 1 + rng.index(4), round % 3 != 0);
    check(inst);

    // Single-field perturbations of the instance just added: each must
    // move the fingerprint (they are value-distinct workloads).
    std::vector<Task> tasks(inst.tasks());
    const std::size_t victim = rng.index(tasks.size());
    switch (round % 5) {
      case 0: tasks[victim].comm += 1e-9; break;
      case 1: tasks[victim].comp += 1e-9; break;
      case 2: tasks[victim].mem += 1e-9; break;
      case 3:
        tasks[victim].comm_bytes =
            tasks[victim].has_comm_bytes() ? tasks[victim].comm_bytes + 1.0
                                           : 512.0;
        break;
      default:
        tasks[victim].channel = static_cast<ChannelId>(
            (tasks[victim].channel + 1) % kMaxChannels);
        break;
    }
    check(Instance(std::move(tasks)));
  }
}

TEST(Fingerprint, ZeroSignsAndTaskCountFoldCleanly) {
  // -0.0 and +0.0 durations are the same workload.
  Instance pos({Task{.comm = 0.0, .comp = 1.0, .mem = 0.0}});
  Instance neg({Task{.comm = -0.0, .comp = 1.0, .mem = -0.0}});
  EXPECT_EQ(fingerprint_of(pos), fingerprint_of(neg));
  // An empty instance and a one-zero-task instance are different.
  EXPECT_FALSE(fingerprint_of(Instance{}) ==
               fingerprint_of(Instance({Task{}})));
}

TEST(CanonicalInstance, OrderTranslationRoundTrips) {
  Rng rng(1005);
  for (int round = 0; round < 30; ++round) {
    const Instance inst = random_annotated_instance(rng, 2 + rng.index(20), 2,
                                                    true);
    const CanonicalInstance canon(inst);
    std::vector<TaskId> order(inst.size());
    std::iota(order.begin(), order.end(), TaskId{0});
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.index(i)]);
    }
    EXPECT_EQ(canon.to_request_order(canon.to_canonical_order(order)), order);
    for (TaskId slot = 0; slot < inst.size(); ++slot) {
      EXPECT_EQ(canon.canonical_slot(canon.request_id(slot)), slot);
    }
  }
  const CanonicalInstance canon(random_annotated_instance(rng, 5, 1, false));
  EXPECT_THROW((void)canon.to_request_order({0, 1, 2}), std::invalid_argument);
  EXPECT_THROW((void)canon.to_request_order({0, 1, 2, 3, 3}),
               std::invalid_argument);
  EXPECT_THROW((void)canon.to_canonical_order({0, 1, 2, 3, 9}),
               std::invalid_argument);
}

TEST(CanonicalInstance, SlotValuesAgreeAcrossPermutations) {
  // Canonical slot k carries the same task values in every permutation of
  // one workload — the property that makes cached orders portable.
  Rng rng(1006);
  const Instance inst = random_annotated_instance(rng, 24, 3, true);
  const Instance perm = shuffled(inst, rng);
  const CanonicalInstance ca(inst);
  const CanonicalInstance cb(perm);
  ASSERT_EQ(ca.size(), cb.size());
  for (TaskId slot = 0; slot < ca.size(); ++slot) {
    const Task& a = inst[ca.request_id(slot)];
    const Task& b = perm[cb.request_id(slot)];
    EXPECT_EQ(a.comm, b.comm);
    EXPECT_EQ(a.comp, b.comp);
    EXPECT_EQ(a.mem, b.mem);
    EXPECT_EQ(a.channel, b.channel);
    EXPECT_EQ(a.comm_bytes, b.comm_bytes);
  }
}

/// The end-to-end portability property: a bytes-only workload served per
/// machine from the cache equals a fresh dts::solve() on the bound
/// instance bit for bit — winner, makespan, order and every start time.
TEST(Fingerprint, CachedOrderRecostedPerMachineEqualsFreshSolve) {
  std::vector<Task> tasks;
  Rng rng(1007);
  for (int i = 0; i < 14; ++i) {
    Task t;
    t.comm = kUnboundTime;
    t.comm_bytes = rng.uniform(1e5, 5e8);
    t.comp = rng.uniform(0.0005, 0.05);
    t.mem = t.comm_bytes;
    tasks.push_back(t);
  }
  const Instance workload{std::move(tasks)};

  SolverService service(ServiceOptions{.workers = 2, .default_solver = "auto"});
  for (const char* machine : {"paper", "cascade", "nvlink"}) {
    const Instance bound = bind(workload, machine_from_name(machine));
    const Mem capacity = 1.5 * bound.min_capacity();
    SolveOptions options;
    options.compute_bounds = false;
    const SolveResult fresh =
        solve(SolveRequest{.instance = bound, .capacity = capacity}, "auto",
              options);

    ServiceRequest request;
    request.instance = workload;
    request.capacity = capacity;
    request.machine = machine;
    for (int pass = 0; pass < 2; ++pass) {
      const ServiceResponse response = service.handle(request);
      ASSERT_EQ(response.status, WireResponse::Status::kOk) << response.error;
      EXPECT_EQ(response.cache, pass == 0
                                    ? WireResponse::CacheOutcome::kMiss
                                    : WireResponse::CacheOutcome::kHit);
      EXPECT_EQ(response.winner, fresh.winner);
      EXPECT_EQ(response.makespan, fresh.makespan);  // exact, not approx
      EXPECT_EQ(response.order, fresh.schedule.comm_order());
      ASSERT_EQ(response.schedule.size(), fresh.schedule.size());
      for (TaskId id = 0; id < fresh.schedule.size(); ++id) {
        EXPECT_EQ(response.schedule[id].comm_start,
                  fresh.schedule[id].comm_start);
        EXPECT_EQ(response.schedule[id].comp_start,
                  fresh.schedule[id].comp_start);
      }
    }
  }
  // One workload, three machines: three distinct cache entries.
  EXPECT_EQ(service.counters().cache.inserts, 3u);
  EXPECT_EQ(service.counters().cache.hits, 3u);
}

/// A permuted submission of a cached workload hits the same entry, and
/// the re-costed schedule is exactly the simulation of the translated
/// order on the permuted bound instance (and therefore feasible).
TEST(Fingerprint, PermutedSubmissionHitsAndRecostsConsistently) {
  Rng rng(1008);
  std::vector<Task> tasks;
  for (int i = 0; i < 12; ++i) {
    Task t;
    t.comm = kUnboundTime;
    t.comm_bytes = rng.uniform(1e5, 5e8);
    t.comp = rng.uniform(0.0005, 0.05);
    t.mem = t.comm_bytes;
    tasks.push_back(t);
  }
  const Instance workload{std::move(tasks)};
  const Instance permuted = shuffled(workload, rng);

  SolverService service(ServiceOptions{.workers = 2});
  ServiceRequest request;
  request.instance = workload;
  request.capacity_factor = 1.4;
  request.machine = "nvlink";
  const ServiceResponse cold = service.handle(request);
  ASSERT_EQ(cold.status, WireResponse::Status::kOk) << cold.error;
  ASSERT_EQ(cold.cache, WireResponse::CacheOutcome::kMiss);

  request.instance = permuted;
  const ServiceResponse warm = service.handle(request);
  ASSERT_EQ(warm.status, WireResponse::Status::kOk) << warm.error;
  EXPECT_EQ(warm.cache, WireResponse::CacheOutcome::kHit);
  EXPECT_EQ(warm.makespan, cold.makespan);
  EXPECT_EQ(warm.winner, cold.winner);

  const Instance bound = bind(permuted, machine_from_name("nvlink"));
  const Mem capacity = 1.4 * bound.min_capacity();
  const Schedule replay = simulate_order(bound, warm.order, capacity);
  ASSERT_EQ(replay.size(), warm.schedule.size());
  for (TaskId id = 0; id < replay.size(); ++id) {
    EXPECT_EQ(replay[id].comm_start, warm.schedule[id].comm_start);
    EXPECT_EQ(replay[id].comp_start, warm.schedule[id].comp_start);
  }
  EXPECT_TRUE(testing::feasible(bound, replay, capacity));
}

}  // namespace
}  // namespace dts
