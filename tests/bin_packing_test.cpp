#include "heuristics/bin_packing.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "test_util.hpp"

namespace dts {
namespace {

TEST(FirstFit, PacksGreedily) {
  // Memories 5, 4, 3, 2, 1 with capacity 6: First-Fit in submission order
  // -> bins {5,1}, {4,2}, {3}.
  const Instance inst = Instance::from_comm_comp(
      {{5, 1}, {4, 1}, {3, 1}, {2, 1}, {1, 1}});
  const auto bins = first_fit_bins(inst, 6.0);
  ASSERT_EQ(bins.size(), 3u);
  EXPECT_EQ(bins[0], (std::vector<TaskId>{0, 4}));
  EXPECT_EQ(bins[1], (std::vector<TaskId>{1, 3}));
  EXPECT_EQ(bins[2], (std::vector<TaskId>{2}));
}

TEST(FirstFit, RespectsCapacityInEveryBin) {
  Rng rng(44);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = testing::random_instance_free_mem(rng, 20);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (const auto& bin : first_fit_bins(inst, capacity)) {
      Mem load = 0.0;
      for (TaskId id : bin) load += inst[id].mem;
      EXPECT_LE(load, capacity + 1e-9);
    }
  }
}

TEST(FirstFit, EveryTaskPlacedExactlyOnce) {
  Rng rng(45);
  const Instance inst = testing::random_instance_free_mem(rng, 30);
  const Mem capacity = testing::random_capacity(rng, inst);
  std::vector<int> seen(inst.size(), 0);
  for (const auto& bin : first_fit_bins(inst, capacity)) {
    for (TaskId id : bin) ++seen[id];
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(),
                          [](int c) { return c == 1; }));
}

TEST(FirstFit, OversizedTaskThrows) {
  const Instance inst = Instance::from_comm_comp({{7, 1}});
  EXPECT_THROW((void)first_fit_bins(inst, 6.0), std::invalid_argument);
}

TEST(FirstFit, ExactFitAllowed) {
  const Instance inst = Instance::from_comm_comp({{6, 1}, {6, 1}});
  const auto bins = first_fit_bins(inst, 6.0);
  EXPECT_EQ(bins.size(), 2u);
}

TEST(BinPackingOrder, ConcatenatesBins) {
  const Instance inst = Instance::from_comm_comp(
      {{5, 1}, {4, 1}, {3, 1}, {2, 1}, {1, 1}});
  EXPECT_EQ(bin_packing_order(inst, 6.0),
            (std::vector<TaskId>{0, 4, 1, 3, 2}));
}

TEST(BinPackingSchedule, FeasibleUnderCapacity) {
  Rng rng(46);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = testing::random_instance(rng, 15);
    const Mem capacity = testing::random_capacity(rng, inst);
    const Schedule s = schedule_bin_packing(inst, capacity);
    EXPECT_TRUE(testing::feasible(inst, s, capacity));
  }
}

TEST(BinPackingSchedule, EmptyInstance) {
  const Instance inst;
  const Schedule s = schedule_bin_packing(inst, 5.0);
  EXPECT_EQ(s.size(), 0u);
}

}  // namespace
}  // namespace dts
