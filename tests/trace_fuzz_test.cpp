/// Fuzz-style negative tests for the dts-trace v1/v2/v3 parser: every
/// malformed input — truncated lines, out-of-range channel columns, CRLF
/// endings, huge or non-numeric tokens, random byte soup — must produce a
/// clean TraceIoError with the offending line number, never a crash, hang
/// or silent misparse. The seeded random corpus additionally round-trips
/// mutations of a valid trace: every mutation either parses to a valid
/// instance or throws TraceIoError (nothing else escapes).

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "support/rng.hpp"
#include "trace/trace_io.hpp"

namespace dts {
namespace {

TraceIoError parse_failure(const std::string& text) {
  std::stringstream buffer(text);
  try {
    (void)read_trace(buffer);
  } catch (const TraceIoError& e) {
    return e;
  }
  ADD_FAILURE() << "expected TraceIoError for:\n" << text;
  return TraceIoError(0, "did not throw");
}

TEST(TraceFuzz, TruncatedRecords) {
  for (const char* line :
       {"task", "task a", "task a 1", "task a 1 2", "task a 1 2 3 0 extra"}) {
    const TraceIoError e =
        parse_failure(std::string("# dts-trace v2\n") + line + "\n");
    EXPECT_EQ(e.line(), 2u) << line;
  }
}

TEST(TraceFuzz, TruncatedMidNumber) {
  // A record cut off in the middle of a token (no trailing newline).
  const TraceIoError e = parse_failure("# dts-trace v1\ntask a 1 2");
  EXPECT_EQ(e.line(), 2u);
}

TEST(TraceFuzz, OutOfRangeChannelColumns) {
  for (const char* channel :
       {"256",                    // == kMaxChannels (exclusive bound)
        "4294967295",             // UINT32_MAX
        "4294967296",             // would wrap a naive uint32 parse
        "99999999999999999999",   // overflows uint64 too
        "-1", "-0", "0x1", "1e2", "2.0", "two"}) {
    std::string text = std::string("# dts-trace v2\ntask a 1 2 3 ") + channel +
                       "\n";
    const TraceIoError e = parse_failure(text);
    EXPECT_EQ(e.line(), 2u) << channel;
  }
}

TEST(TraceFuzz, ChannelColumnUnderV1HeaderIsACleanError) {
  // Accepting it would silently turn a malformed v1 trace into a
  // multi-channel instance with optimistic overlap.
  const TraceIoError e = parse_failure("# dts-trace v1\ntask a 1 2 3 1\n");
  EXPECT_EQ(e.line(), 2u);
  EXPECT_NE(std::string(e.what()).find("v1"), std::string::npos);
}

TEST(TraceFuzz, CrlfEndingsAreACleanError) {
  // Fully CRLF file: rejected at the header line with a CRLF-specific
  // message, not a generic "missing header".
  const TraceIoError header =
      parse_failure("# dts-trace v1\r\ntask a 1 2 3\r\n");
  EXPECT_EQ(header.line(), 1u);
  EXPECT_NE(std::string(header.what()).find("CRLF"), std::string::npos);

  // Mixed endings (LF header, CRLF records) must not silently parse: the
  // '\r' could end up glued to the last numeric field.
  const TraceIoError record = parse_failure("# dts-trace v1\ntask a 1 2 3\r\n");
  EXPECT_EQ(record.line(), 2u);
  EXPECT_NE(std::string(record.what()).find("CRLF"), std::string::npos);
}

TEST(TraceFuzz, HugeAndNonFiniteTokens) {
  for (const char* fields :
       {"1e400 2 3",       // overflows double
        "1 2 1e400",
        "inf 2 3",         // parses as a double but is not a valid duration
        "nan 2 3",
        "-0.5 2 3",        // negative duration
        "1 -2 3",
        "1 2 -3",
        "0x10 2 3",        // hex soup
        "1,5 2 3"}) {      // locale-style decimal comma -> trailing junk
    const TraceIoError e =
        parse_failure(std::string("# dts-trace v1\ntask a ") + fields + "\n");
    EXPECT_EQ(e.line(), 2u) << fields;
  }
}

TEST(TraceFuzz, HugeTokenCountsRejectedAsTrailingContent) {
  std::string line = "task a 1 2 3 0";
  for (int i = 0; i < 512; ++i) line += " 9";
  const TraceIoError e = parse_failure("# dts-trace v2\n" + line + "\n");
  EXPECT_EQ(e.line(), 2u);
}

TEST(TraceFuzz, AbsurdlyLongSingleToken) {
  // A multi-megabyte name token must not crash or hang; it either parses
  // (names are free-form) or errors — here the record is also truncated.
  const std::string huge_name(1 << 21, 'x');
  const TraceIoError e =
      parse_failure("# dts-trace v1\ntask " + huge_name + " 1\n");
  EXPECT_EQ(e.line(), 2u);
}

TEST(TraceFuzz, HeaderGarbage) {
  for (const char* header :
       {"", "\n", "# dts-trace v5", "# dts-trace", "dts-trace v1",
        "# DTS-TRACE V1", "\xff\xfe# dts-trace v1"}) {
    const TraceIoError e = parse_failure(std::string(header) + "\n");
    EXPECT_EQ(e.line(), 1u) << header;
  }
}

TEST(TraceFuzz, ByteAnnotationsGatedOnV3Header) {
  // A bytes= column in a v1/v2 trace must stay a loud error, exactly like
  // the channel column under v1 — silently dropping it would discard the
  // machine-independent sizes; silently accepting it would let old
  // writers emit traces old readers misparse.
  for (const char* header : {"# dts-trace v1", "# dts-trace v2"}) {
    const TraceIoError e =
        parse_failure(std::string(header) + "\ntask a 1 2 3 bytes=100\n");
    EXPECT_EQ(e.line(), 2u) << header;
    EXPECT_NE(std::string(e.what()).find("v3"), std::string::npos) << header;
  }
}

TEST(TraceFuzz, MalformedByteAnnotations) {
  for (const char* tail :
       {"bytes=",            // empty value
        "bytes=abc",         // non-numeric
        "bytes=-5",          // negative size
        "bytes=1e400",       // overflows double
        "bytes=0x20",        // hex soup
        "bytes=1 bytes=2",   // duplicate annotation
        "bytes=1 7",         // channel after bytes (order is fixed)
        "0 bytes=1 junk"}) { // trailing content
    const TraceIoError e =
        parse_failure(std::string("# dts-trace v3\ntask a 1 2 3 ") + tail +
                      "\n");
    EXPECT_EQ(e.line(), 2u) << tail;
  }
}

TEST(TraceFuzz, TimelessTasksNeedV3AndBytes) {
  // '?' comm is the v3 time-less marker; under v1/v2 it is garbage, and
  // even under v3 it needs a byte annotation to ever become costable.
  for (const char* text :
       {"# dts-trace v1\ntask a ? 2 3\n",
        "# dts-trace v2\ntask a ? 2 3 0\n",
        "# dts-trace v3\ntask a ? 2 3\n",        // no bytes=
        "# dts-trace v3\ntask a -1 2 3 bytes=4\n"}) {  // only '?' marks it
    const TraceIoError e = parse_failure(text);
    EXPECT_EQ(e.line(), 2u) << text;
  }
}

TEST(TraceFuzz, RandomByteSoupNeverCrashes) {
  Rng rng(20260729);
  for (int round = 0; round < 200; ++round) {
    std::string text = round % 2 == 0 ? "# dts-trace v2\n" : "# dts-trace v3\n";
    const std::size_t len = rng.index(400);
    for (std::size_t i = 0; i < len; ++i) {
      // Printable-ish bytes plus separators; enough to hit the tokenizer
      // (including the v3 bytes=/'?' paths) from every angle without
      // being pure noise.
      const char alphabet[] = "task 0123456789.eE+-#\n\t bytes=?chnl";
      text += alphabet[rng.index(sizeof(alphabet) - 1)];
    }
    std::stringstream buffer(text);
    try {
      const Instance inst = read_trace(buffer);
      // Parsed: then every task must be valid and on a sane channel.
      for (const Task& t : inst) {
        EXPECT_TRUE(is_valid(t));
        EXPECT_LT(t.channel, kMaxChannels);
      }
    } catch (const TraceIoError&) {
      // Clean rejection is the expected outcome for most rounds.
    }
  }
}

TEST(TraceFuzz, MutatedValidTraceParsesOrThrowsCleanly) {
  const std::string valid =
      "# dts-trace v2\n"
      "task a 1.5 2.25 3 0\n"
      "task b 0 4 1 1\n"
      "task c 2 0 2 1\n";
  Rng rng(42);
  for (int round = 0; round < 300; ++round) {
    std::string text = valid;
    // 1-3 random single-byte mutations (overwrite, insert, delete).
    const int edits = 1 + static_cast<int>(rng.index(3));
    for (int e = 0; e < edits; ++e) {
      if (text.empty()) break;
      const std::size_t pos = rng.index(text.size());
      const char byte = static_cast<char>(rng.index(96) + 32);
      switch (rng.index(3)) {
        case 0: text[pos] = byte; break;
        case 1: text.insert(pos, 1, byte); break;
        default: text.erase(pos, 1); break;
      }
    }
    std::stringstream buffer(text);
    try {
      const Instance inst = read_trace(buffer);
      for (const Task& t : inst) {
        EXPECT_TRUE(is_valid(t));
        EXPECT_LT(t.channel, kMaxChannels);
      }
    } catch (const TraceIoError&) {
    }
  }
}

}  // namespace
}  // namespace dts
