#include "exact/lower_bounds.hpp"

#include <gtest/gtest.h>

#include "core/johnson.hpp"
#include "core/registry.hpp"
#include "exact/exhaustive.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(CapacityAwareBounds, EmptyInstance) {
  const CapacityAwareBounds b = capacity_aware_bounds(Instance{}, 1.0);
  EXPECT_DOUBLE_EQ(b.combined, 0.0);
  EXPECT_FALSE(b.capacity_binds());
}

TEST(CapacityAwareBounds, BigTaskSerialization) {
  // Two tasks of mem 6 under capacity 10: both exceed C/2, so their memory
  // intervals cannot overlap: makespan >= (4+3) + (4+3) = 14 > OMIM.
  const Instance inst = Instance::from_triples({{4, 3, 6}, {4, 3, 6}});
  const CapacityAwareBounds b = capacity_aware_bounds(inst, 10.0);
  EXPECT_DOUBLE_EQ(b.big_task_serial, 14.0);
  EXPECT_DOUBLE_EQ(b.combined, 14.0);
  EXPECT_TRUE(b.capacity_binds());
  // And the bound is achieved by any order.
  EXPECT_DOUBLE_EQ(
      makespan_of_order(inst, inst.submission_order(), 10.0), 14.0);
}

TEST(CapacityAwareBounds, NoBigTasksReducesToClassicBounds) {
  const Instance inst = testing::table3_instance();
  const CapacityAwareBounds b = capacity_aware_bounds(inst, 100.0);
  EXPECT_DOUBLE_EQ(b.big_task_serial, 0.0);
  EXPECT_DOUBLE_EQ(b.combined, b.omim);
  EXPECT_FALSE(b.capacity_binds());
}

TEST(CapacityAwareBounds, LinkAndHeadTerms) {
  const Instance inst = Instance::from_comm_comp({{3, 2}, {5, 1}});
  const CapacityAwareBounds b = capacity_aware_bounds(inst, 100.0);
  EXPECT_DOUBLE_EQ(b.link_plus_tail, 8.0 + 1.0);
  EXPECT_DOUBLE_EQ(b.head_plus_comp, 3.0 + 3.0);
}

TEST(CapacityAwareBounds, NeverExceedsExactOptimum) {
  Rng rng(501);
  for (int iter = 0; iter < 120; ++iter) {
    const Instance inst = testing::random_instance(rng, 6);
    const Mem capacity = testing::random_capacity(rng, inst, 2.5);
    const CapacityAwareBounds b = capacity_aware_bounds(inst, capacity);
    const ExhaustiveResult exact = best_common_order(inst, capacity);
    EXPECT_LE(b.combined, exact.makespan + 1e-9)
        << "bound must stay below the optimal permutation makespan";
    EXPECT_GE(b.combined + 1e-9, b.omim);
  }
}

TEST(CapacityAwareBounds, TightensRatiosOnBigTaskWorkloads) {
  // CCSD-like: a few giant tasks under a tight capacity. The combined
  // bound must strictly improve over OMIM.
  Rng rng(502);
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Task{.id = 0, .comm = rng.uniform(5, 9),
                         .comp = rng.uniform(1, 3), .mem = 10.0, .name = {}});
  }
  for (int i = 0; i < 8; ++i) {
    const Time comm = rng.uniform(0.2, 1.0);
    tasks.push_back(Task{.id = 0, .comm = comm, .comp = rng.uniform(0.2, 1.0),
                         .mem = comm, .name = {}});
  }
  const Instance inst{std::move(tasks)};
  const CapacityAwareBounds b = capacity_aware_bounds(inst, 12.0);
  EXPECT_GT(b.big_task_serial, 0.0);
  EXPECT_TRUE(b.capacity_binds());
  // Every heuristic respects the bound.
  for (HeuristicId id : all_heuristic_ids()) {
    EXPECT_GE(heuristic_makespan(id, inst, 12.0) + 1e-9, b.combined)
        << name_of(id);
  }
}

}  // namespace
}  // namespace dts
