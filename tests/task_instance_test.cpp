#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>

#include "core/instance.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(Task, ComputeIntensiveClassification) {
  EXPECT_TRUE((Task{.id = 0, .comm = 2, .comp = 3, .mem = 2, .name = {}})
                  .compute_intensive());
  EXPECT_TRUE((Task{.id = 0, .comm = 2, .comp = 2, .mem = 2, .name = {}})
                  .compute_intensive())
      << "CP == CM counts as compute intensive (paper definition)";
  EXPECT_FALSE((Task{.id = 0, .comm = 3, .comp = 2, .mem = 3, .name = {}})
                   .compute_intensive());
}

TEST(Task, AccelerationRatio) {
  const Task t{.id = 0, .comm = 2, .comp = 5, .mem = 2, .name = {}};
  EXPECT_DOUBLE_EQ(t.acceleration(), 2.5);
  const Task zero_comm{.id = 0, .comm = 0, .comp = 5, .mem = 0, .name = {}};
  EXPECT_EQ(zero_comm.acceleration(), kInfiniteTime);
}

TEST(Task, Validity) {
  EXPECT_TRUE(is_valid(Task{.id = 0, .comm = 0, .comp = 0, .mem = 0, .name = {}}));
  EXPECT_FALSE(is_valid(Task{.id = 0, .comm = -1, .comp = 0, .mem = 0, .name = {}}));
  EXPECT_FALSE(is_valid(Task{.id = 0, .comm = 0, .comp = -0.5, .mem = 0, .name = {}}));
  EXPECT_FALSE(is_valid(Task{.id = 0, .comm = 0, .comp = 0, .mem = -2, .name = {}}));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(is_valid(Task{.id = 0, .comm = nan, .comp = 0, .mem = 0, .name = {}}));
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(is_valid(Task{.id = 0, .comm = inf, .comp = 0, .mem = 0, .name = {}}));
}

TEST(Task, ToStringContainsFields) {
  const Task t{.id = 3, .comm = 2.5, .comp = 4, .mem = 7, .name = "alpha"};
  const std::string s = to_string(t);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
}

TEST(Instance, AssignsIdsByPosition) {
  const Instance inst = testing::table3_instance();
  ASSERT_EQ(inst.size(), 4u);
  for (TaskId i = 0; i < inst.size(); ++i) EXPECT_EQ(inst[i].id, i);
}

TEST(Instance, RejectsInvalidTask) {
  std::vector<Task> tasks{
      Task{.id = 0, .comm = 1, .comp = -1, .mem = 1, .name = {}}};
  EXPECT_THROW(Instance{std::move(tasks)}, std::invalid_argument);
}

TEST(Instance, FromTriplesAndPairs) {
  const Instance a = Instance::from_triples({{1, 2, 7}});
  EXPECT_DOUBLE_EQ(a[0].mem, 7.0);
  const Instance b = Instance::from_comm_comp({{3, 4}});
  EXPECT_DOUBLE_EQ(b[0].mem, 3.0) << "paper convention: mem = comm time";
}

TEST(Instance, MinCapacityIsLargestFootprint) {
  const Instance inst = testing::table5_instance();
  EXPECT_DOUBLE_EQ(inst.min_capacity(), 8.0);
  EXPECT_DOUBLE_EQ(Instance{}.min_capacity(), 0.0);
}

TEST(Instance, StatsAggregates) {
  const Instance inst = testing::table3_instance();
  const InstanceStats s = inst.stats();
  EXPECT_EQ(s.n_tasks, 4u);
  EXPECT_DOUBLE_EQ(s.sum_comm, 10.0);
  EXPECT_DOUBLE_EQ(s.sum_comp, 10.0);
  EXPECT_DOUBLE_EQ(s.max_mem, 4.0);
  EXPECT_DOUBLE_EQ(s.total_mem, 10.0);
  // B (1,3) and C (4,4) are compute intensive.
  EXPECT_EQ(s.n_compute_intensive, 2u);
  EXPECT_DOUBLE_EQ(s.compute_intensive_fraction(), 0.5);
}

TEST(Instance, SubsetRenumbersIds) {
  const Instance inst = testing::table3_instance();
  const std::vector<TaskId> ids{2, 0};
  const Instance sub = inst.subset(ids);
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub[0].comm, 4.0);  // was task C
  EXPECT_DOUBLE_EQ(sub[1].comm, 3.0);  // was task A
  EXPECT_EQ(sub[0].id, 0u);
  EXPECT_EQ(sub[1].id, 1u);
}

TEST(Instance, SubsetRejectsBadId) {
  const Instance inst = testing::table3_instance();
  const std::vector<TaskId> ids{9};
  EXPECT_THROW((void)inst.subset(ids), std::out_of_range);
}

TEST(Instance, SubmissionOrderIsIota) {
  const Instance inst = testing::table4_instance();
  EXPECT_EQ(inst.submission_order(), (std::vector<TaskId>{0, 1, 2, 3}));
}

TEST(Instance, EmptyInstanceStats) {
  const Instance inst;
  EXPECT_TRUE(inst.empty());
  EXPECT_EQ(inst.stats().n_tasks, 0u);
  EXPECT_DOUBLE_EQ(inst.stats().compute_intensive_fraction(), 0.0);
}

}  // namespace
}  // namespace dts
