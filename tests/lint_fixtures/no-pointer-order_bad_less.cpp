// lint-as: src/core/fixture.cpp
#include <memory>
#include <set>
std::set<int*, std::less<int*>> by_address;
