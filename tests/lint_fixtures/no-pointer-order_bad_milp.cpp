// lint-as: src/milp/fixture.cpp
#include <memory>
#include <set>
std::set<double*, std::less<double*>> columns_by_address;
