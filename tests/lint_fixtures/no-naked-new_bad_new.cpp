// lint-as: src/core/fixture.cpp
struct Node { Node* next; };
Node* grow() { return new Node{nullptr}; }
