// lint-as: src/exact/fixture.cpp
#include <map>
std::map<int, double> lower_bounds;
