// lint-as: src/report/fixture.cpp
#include <ostream>
void dump(std::ostream& out) { out << "x\n"; }
