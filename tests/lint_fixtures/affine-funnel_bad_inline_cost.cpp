// lint-as: src/core/fixture.cpp
double cost(double bytes, double latency, double bandwidth) {
  return latency + bytes / bandwidth;
}
