// lint-as: src/core/hot_fixture.cpp
// Violations: a marked hot-path function that declares a container,
// grows a buffer, builds a string for an inline throw — every class of
// per-candidate cost the rule exists to keep out of the scoring loop.

#include <stdexcept>
#include <string>
#include <vector>

namespace dts {

struct BadScratch {
  std::vector<double> heap;

  // dts-lint: hot-path
  double score(const double* cost, const int* order, int n) {
    std::vector<double> local(static_cast<std::size_t>(n));
    heap.reserve(static_cast<std::size_t>(n));
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      const int id = order[k];
      if (id < 0) {
        throw std::invalid_argument("bad candidate " + std::to_string(id));
      }
      total += cost[id];
      local[static_cast<std::size_t>(k)] = total;
    }
    return total;
  }
};

}  // namespace dts
