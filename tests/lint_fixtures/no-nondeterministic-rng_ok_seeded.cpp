// lint-as: src/heuristics/fixture.cpp
#include "support/rng.hpp"
double draw(SplitMix64& rng) { return rng.next_double(); }
