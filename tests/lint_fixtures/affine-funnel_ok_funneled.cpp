// lint-as: src/core/fixture.cpp
double cost(double bytes, double latency, double bandwidth) {
  return affine_transfer_time(latency, bandwidth, bytes);
}
