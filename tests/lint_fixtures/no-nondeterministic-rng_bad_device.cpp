// lint-as: src/heuristics/fixture.cpp
#include <random>
unsigned seed() { return std::random_device{}(); }
