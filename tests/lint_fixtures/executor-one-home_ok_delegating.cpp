// lint-as: src/heuristics/dynamic.cpp
void execute_dynamic(const Instance& inst, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out) {
  const CompiledInstance ci(inst);
  execute_dynamic(ci, ids, criterion, state, out);
}

void execute_dynamic(const CompiledInstance& ci, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out) {
  const TaskId chosen = pick_candidate(ci, state, ids, criterion);
  state.start(soa_task(ci, chosen));
}
