// lint-as: src/core/fixture.hpp
#pragma once
struct Fixture {};
