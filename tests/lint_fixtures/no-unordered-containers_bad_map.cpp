// lint-as: src/exact/fixture.cpp
#include <unordered_map>
std::unordered_map<int, double> lower_bounds;
