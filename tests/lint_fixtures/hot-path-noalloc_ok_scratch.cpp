// lint-as: src/core/hot_fixture.cpp
// Clean hot path: pre-reserved buffers, heap ops on them, cold error
// funnel — nothing the rule bans. The unmarked helper below it may
// allocate freely.

#include <algorithm>
#include <functional>
#include <string>
#include <vector>

namespace dts {

[[noreturn]] void throw_bad_candidate(int id);

struct Scratch {
  std::vector<double> clocks;
  std::vector<double> heap;

  // dts-lint: hot-path
  double score(const double* cost, const int* order, int n) {
    double total = 0.0;
    for (int k = 0; k < n; ++k) {
      const int id = order[k];
      if (id < 0) throw_bad_candidate(id);
      total += cost[id];
      heap.push_back(total);
      std::push_heap(heap.begin(), heap.end(), std::greater<>{});
    }
    return total;
  }

  // Not marked: cold setup code is free to size buffers and build text.
  std::string describe(int n) {
    clocks.resize(static_cast<std::size_t>(n));
    heap.reserve(static_cast<std::size_t>(n));
    return "scratch for " + std::to_string(n) + " tasks";
  }
};

}  // namespace dts
