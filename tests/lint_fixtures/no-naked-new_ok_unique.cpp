// lint-as: src/core/fixture.cpp
#include <memory>
struct Node {};
std::unique_ptr<Node> grow() { return std::make_unique<Node>(); }
