// lint-as: src/milp/fixture.cpp
#include <set>
std::set<int> fractional_vars;
