// lint-as: src/report/fixture.cpp
#include <iostream>
void dump() { std::cout << "x\n"; }
