// lint-as: src/heuristics/dynamic.cpp
void execute_dynamic(const Instance& inst, std::span<const TaskId> ids,
                     DynamicCriterion criterion, ExecutionState& state,
                     Schedule& out) {
  const TaskId chosen = pick_candidate(inst, state, ids, criterion);
  state.start(inst[chosen]);
}
