#pragma once
#include <string>
std::string label();
