// lint-as: src/milp/fixture.cpp
#include <unordered_set>
std::unordered_set<int> fractional_vars;
