// lint-as: src/core/fixture.hpp
struct Fixture {};
