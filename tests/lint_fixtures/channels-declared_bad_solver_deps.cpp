// lint-as: src/core/fixture.cpp
void register_builtin_solvers(SolverRegistry& registry) {
  registry.add("fixture", "", "a solver", SolverChannels::kAny,
               [](const SolverOptions&) { return nullptr; });
}
