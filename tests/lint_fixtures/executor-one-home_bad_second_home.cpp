// lint-as: src/core/batch.cpp
void execute_corrected(const Instance& inst, std::span<const TaskId> ids,
                       DynamicCriterion criterion, ExecutionState& state,
                       Schedule& out) {
  const CompiledInstance ci(inst);
  execute_corrected(ci, ids, criterion, state, out);
}
