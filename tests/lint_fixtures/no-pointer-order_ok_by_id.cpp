// lint-as: src/core/fixture.cpp
struct Job { int id; };
bool before(const Job& a, const Job& b) { return a.id < b.id; }
