#include "heuristics/corrections.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/johnson.hpp"
#include "heuristics/static_orders.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(Corrections, FollowsBaseOrderWhenMemoryIsAmple) {
  // With unbounded memory no correction ever fires: the schedule equals
  // the plain static execution of the base order.
  Rng rng(21);
  for (int iter = 0; iter < 50; ++iter) {
    const Instance inst = testing::random_instance(rng, 10);
    const std::vector<TaskId> base = johnson_order(inst);
    const Schedule corrected = schedule_corrected_with_order(
        inst, base, DynamicCriterion::kLargestComm, kInfiniteMem);
    const Schedule plain = simulate_order(inst, base, kInfiniteMem);
    for (TaskId i = 0; i < inst.size(); ++i) {
      EXPECT_DOUBLE_EQ(corrected[i].comm_start, plain[i].comm_start);
      EXPECT_DOUBLE_EQ(corrected[i].comp_start, plain[i].comp_start);
    }
  }
}

TEST(Corrections, DivertsOnlyWhenHeadDoesNotFit) {
  // Head C (mem 8) is blocked at t=2 by B (mem 2) under capacity 9;
  // the correction must pick a *fitting* task, never C.
  const Instance inst = testing::table5_instance();
  const Schedule s = schedule_corrected_with_order(
      inst, testing::table5_paper_omim_order(),
      DynamicCriterion::kLargestComm, testing::kTable5Capacity);
  // C's transfer cannot coexist with anything else (8 + x > 9 for x >= 2).
  const Time c_start = s[2].comm_start;
  EXPECT_GE(c_start, 17.0) << "C waits for every other footprint to clear";
}

TEST(Corrections, FeasibleAndBounded) {
  Rng rng(22);
  for (int iter = 0; iter < 100; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem capacity = testing::random_capacity(rng, inst);
    for (DynamicCriterion c :
         {DynamicCriterion::kLargestComm, DynamicCriterion::kSmallestComm,
          DynamicCriterion::kMaxAcceleration}) {
      const Schedule s = schedule_corrected(inst, c, capacity);
      EXPECT_TRUE(testing::feasible(inst, s, capacity));
      const Bounds b = compute_bounds(inst);
      EXPECT_GE(s.makespan(inst) + 1e-9, b.omim_lower);
      EXPECT_LE(s.makespan(inst), b.sequential_upper + 1e-9);
    }
  }
}

TEST(Corrections, EqualsOosimWhenNoCorrectionNeeded) {
  // Capacity large enough that the Johnson order never blocks: all three
  // corrected heuristics must coincide with OOSIM.
  Rng rng(23);
  for (int iter = 0; iter < 30; ++iter) {
    const Instance inst = testing::random_instance(rng, 8);
    const InstanceStats stats = inst.stats();
    const Mem capacity = stats.total_mem;  // everything fits at once
    const Time oosim = makespan_of_order(inst, johnson_order(inst), capacity);
    for (DynamicCriterion c :
         {DynamicCriterion::kLargestComm, DynamicCriterion::kSmallestComm,
          DynamicCriterion::kMaxAcceleration}) {
      EXPECT_DOUBLE_EQ(schedule_corrected(inst, c, capacity).makespan(inst),
                       oosim);
    }
  }
}

TEST(Corrections, BaseOrderSizeMismatchThrows) {
  const Instance inst = testing::table5_instance();
  const std::vector<TaskId> short_order{0, 1};
  EXPECT_THROW((void)schedule_corrected_with_order(
                   inst, short_order, DynamicCriterion::kLargestComm, 9.0),
               std::invalid_argument);
}

TEST(Corrections, ThrowsWhenTaskExceedsCapacity) {
  const Instance inst = Instance::from_comm_comp({{5, 1}, {1, 1}});
  EXPECT_THROW(
      (void)schedule_corrected(inst, DynamicCriterion::kLargestComm, 4.0),
      std::invalid_argument);
}

TEST(Corrections, Acronyms) {
  EXPECT_EQ(to_corrected_acronym(DynamicCriterion::kLargestComm), "OOLCMR");
  EXPECT_EQ(to_corrected_acronym(DynamicCriterion::kSmallestComm), "OOSCMR");
  EXPECT_EQ(to_corrected_acronym(DynamicCriterion::kMaxAcceleration),
            "OOMAMR");
}

TEST(Corrections, HeadRegainsPriorityAfterIdle) {
  // When nothing fits, the engine idles to the next release and the head
  // of the order gets first refusal again (not the dynamic criterion).
  const Instance inst = Instance::from_comm_comp({
      {6, 10},  // 0: big head task
      {5, 1},   // 1: would be the LCMR favourite
      {1, 1},   // 2: small
  });
  // Capacity 6: after task 0 starts, nothing else fits until its comp ends.
  const std::vector<TaskId> base{0, 1, 2};
  const Schedule s = schedule_corrected_with_order(
      inst, base, DynamicCriterion::kLargestComm, 6.0);
  EXPECT_TRUE(testing::feasible(inst, s, 6.0));
  // Task 1 fits only after task 0 releases at t=16; head order kept.
  EXPECT_DOUBLE_EQ(s[1].comm_start, 16.0);
  EXPECT_DOUBLE_EQ(s[2].comm_start, 21.0);
}

}  // namespace
}  // namespace dts
