#include "heuristics/local_search.hpp"

#include <gtest/gtest.h>

#include "core/johnson.hpp"
#include "core/registry.hpp"
#include "exact/exhaustive.hpp"
#include "test_util.hpp"

namespace dts {
namespace {

TEST(LocalSearch, NeverWorseThanSeed) {
  Rng rng(701);
  for (int iter = 0; iter < 30; ++iter) {
    const Instance inst = testing::random_instance(rng, 12);
    const Mem capacity = testing::random_capacity(rng, inst);
    const std::vector<TaskId> seed = inst.submission_order();
    LocalSearchOptions options;
    options.max_iterations = 500;
    const LocalSearchResult res = improve_order(inst, capacity, seed, options);
    EXPECT_LE(res.makespan, res.initial_makespan + 1e-9);
    EXPECT_TRUE(testing::feasible(inst, res.schedule, capacity));
    EXPECT_GE(res.makespan + 1e-9, omim(inst));
  }
}

TEST(LocalSearch, FindsOptimumOnSmallInstances) {
  // With a generous budget, local search over permutations should land on
  // (or very near) the exhaustive optimum for small instances.
  Rng rng(702);
  int hits = 0;
  constexpr int kTrials = 20;
  for (int iter = 0; iter < kTrials; ++iter) {
    const Instance inst = testing::random_instance(rng, 6);
    const Mem capacity = testing::random_capacity(rng, inst, 1.8);
    const ExhaustiveResult exact = best_common_order(inst, capacity);
    LocalSearchOptions options;
    options.max_iterations = 4000;
    options.max_no_improve = 1500;
    options.seed = static_cast<std::uint64_t>(iter);
    const LocalSearchResult res =
        improve_order(inst, capacity, inst.submission_order(), options);
    if (res.makespan <= exact.makespan + 1e-9) ++hits;
  }
  EXPECT_GE(hits, kTrials * 3 / 4)
      << "local search should reach the optimum most of the time";
}

TEST(LocalSearch, DeterministicInSeed) {
  Rng rng(703);
  const Instance inst = testing::random_instance(rng, 10);
  const Mem capacity = testing::random_capacity(rng, inst);
  LocalSearchOptions options;
  options.max_iterations = 300;
  options.seed = 42;
  const LocalSearchResult a =
      improve_order(inst, capacity, inst.submission_order(), options);
  const LocalSearchResult b =
      improve_order(inst, capacity, inst.submission_order(), options);
  EXPECT_EQ(a.order, b.order);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(LocalSearch, SeededVariantStartsFromBestHeuristic) {
  Rng rng(704);
  const Instance inst = testing::random_instance(rng, 12);
  const Mem capacity = testing::random_capacity(rng, inst);
  Time best_heuristic = kInfiniteTime;
  for (HeuristicId id : all_heuristic_ids()) {
    best_heuristic =
        std::min(best_heuristic, heuristic_makespan(id, inst, capacity));
  }
  LocalSearchOptions options;
  options.max_iterations = 200;
  const LocalSearchResult res = schedule_local_search(inst, capacity, options);
  EXPECT_NEAR(res.initial_makespan, best_heuristic, 1e-9);
  EXPECT_LE(res.makespan, best_heuristic + 1e-9);
}

TEST(LocalSearch, RejectsBadOrder) {
  const Instance inst = testing::table3_instance();
  const std::vector<TaskId> short_order{0, 1};
  EXPECT_THROW((void)improve_order(inst, 6.0, short_order, {}),
               std::invalid_argument);
}

TEST(LocalSearch, SingletonInstance) {
  const Instance inst = Instance::from_comm_comp({{2, 3}});
  const LocalSearchResult res =
      improve_order(inst, 2.0, inst.submission_order(), {});
  EXPECT_DOUBLE_EQ(res.makespan, 5.0);
  EXPECT_EQ(res.iterations, 0u) << "no moves exist for one task";
}

}  // namespace
}  // namespace dts
