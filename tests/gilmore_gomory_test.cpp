#include "heuristics/gilmore_gomory.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace dts {
namespace {

/// Brute-force optimal no-wait makespan (n <= 8).
Time brute_force_no_wait(const Instance& inst) {
  std::vector<TaskId> order = inst.submission_order();
  std::sort(order.begin(), order.end());
  Time best = kInfiniteTime;
  do {
    best = std::min(best, no_wait_makespan(inst, order));
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

TEST(NoWaitMakespan, MatchesHandComputation) {
  // Jobs (comm, comp): (2,3) then (4,1): second transfer waits
  // max(0, 3-4)=0 after the first, so start2 = 2, end = 2+4+1 = 7.
  const Instance inst = Instance::from_comm_comp({{2, 3}, {4, 1}});
  const std::vector<TaskId> order{0, 1};
  EXPECT_DOUBLE_EQ(no_wait_makespan(inst, order), 7.0);
  // Reversed: (4,1) then (2,3): gap max(0, 1-2)=0, end = 4+2+3 = 9.
  const std::vector<TaskId> rev{1, 0};
  EXPECT_DOUBLE_EQ(no_wait_makespan(inst, rev), 9.0);
}

TEST(NoWaitMakespan, GapInsertedWhenNextTransferIsShort) {
  // (1, 10) then (2, 1): transfer 2 must wait so its computation starts
  // exactly when the first ends: start2 = 1 + max(0, 10-2) = 9; end = 12.
  const Instance inst = Instance::from_comm_comp({{1, 10}, {2, 1}});
  const std::vector<TaskId> order{0, 1};
  EXPECT_DOUBLE_EQ(no_wait_makespan(inst, order), 12.0);
}

TEST(NoWaitMakespan, EmptyAndSingle) {
  const Instance empty;
  EXPECT_DOUBLE_EQ(no_wait_makespan(empty, {}), 0.0);
  const Instance one = Instance::from_comm_comp({{3, 4}});
  const std::vector<TaskId> order{0};
  EXPECT_DOUBLE_EQ(no_wait_makespan(one, order), 7.0);
}

TEST(GilmoreGomory, TrivialInstances) {
  const Instance empty;
  EXPECT_TRUE(gilmore_gomory_order(empty).empty());
  const Instance one = Instance::from_comm_comp({{3, 4}});
  EXPECT_EQ(gilmore_gomory_order(one), (std::vector<TaskId>{0}));
}

TEST(GilmoreGomory, ProducesPermutation) {
  Rng rng(33);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng.index(12);
    const Instance inst = testing::random_instance(rng, n);
    std::vector<TaskId> order = gilmore_gomory_order(inst);
    std::sort(order.begin(), order.end());
    EXPECT_EQ(order, inst.submission_order());
  }
}

TEST(GilmoreGomory, OptimalOnRandomInstances) {
  // The core exactness property: the GG sequence minimizes the no-wait
  // makespan. Cross-checked against brute force on hundreds of instances
  // (with duplicates, zeros and integer ties).
  Rng rng(34);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t n = 2 + rng.index(6);  // up to 7 jobs
    const Instance inst = testing::random_instance(rng, n);
    const std::vector<TaskId> gg = gilmore_gomory_order(inst);
    const Time gg_ms = no_wait_makespan(inst, gg);
    const Time best = brute_force_no_wait(inst);
    EXPECT_NEAR(gg_ms, best, 1e-9) << "GG suboptimal at iteration " << iter
                                   << " (n=" << n << ")";
  }
}

TEST(GilmoreGomory, OptimalOnIntegerInstances) {
  // Integer durations produce many ties — the regime where the patching
  // step's cycle structure is most intricate.
  Rng rng(35);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t n = 2 + rng.index(6);
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < n; ++i) {
      const Time comm = static_cast<Time>(rng.uniform_u64(0, 4));
      const Time comp = static_cast<Time>(rng.uniform_u64(0, 4));
      tasks.push_back(
          Task{.id = 0, .comm = comm, .comp = comp, .mem = comm, .name = {}});
    }
    const Instance inst(std::move(tasks));
    const Time gg_ms = no_wait_makespan(inst, gilmore_gomory_order(inst));
    EXPECT_NEAR(gg_ms, brute_force_no_wait(inst), 1e-9)
        << "GG suboptimal at iteration " << iter;
  }
}

TEST(GilmoreGomory, ScheduleFeasibleUnderCapacity) {
  Rng rng(36);
  for (int iter = 0; iter < 50; ++iter) {
    const Instance inst = testing::random_instance(rng, 10);
    const Mem capacity = testing::random_capacity(rng, inst);
    const Schedule s = schedule_gilmore_gomory(inst, capacity);
    EXPECT_TRUE(testing::feasible(inst, s, capacity));
  }
}

TEST(GilmoreGomory, HandlesLargeInstancesQuickly) {
  Rng rng(37);
  const Instance inst = testing::random_instance(rng, 2000);
  const std::vector<TaskId> order = gilmore_gomory_order(inst);
  EXPECT_EQ(order.size(), 2000u);
}

}  // namespace
}  // namespace dts
